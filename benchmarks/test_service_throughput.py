"""Campaign-service throughput: jobs/sec and queue latency vs workers.

Replays one fixed seeded traffic trace through a live
:class:`~repro.service.service.CampaignService` at 1, 2, and 4 warm
workers and writes ``BENCH_service.json`` at the repo root with
jobs/sec plus p50/p95 *wall-clock* queue latency per worker count, so CI
tracks service overhead alongside the paper figures.

Wall-clock numbers are telemetry, never part of job results: the bench
also replays the same trace through the deterministic two-phase replay
path at two worker counts and asserts the summary documents are
byte-identical — scaling the pool must change only how fast, not what.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.obs.provenance import build_provenance
from repro.service.traffic import (
    TraceSpec,
    _percentile,
    generate_trace,
    replay_trace,
    summary_to_json,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

WORKER_COUNTS = (1, 2, 4)

#: Interactive-run-only trace: per-job cost is small, so the measurement
#: is dominated by service overhead (admission, dispatch, store, events)
#: rather than simulation time.
TRACE = TraceSpec(
    seed=42,
    requests=24,
    classes=(("run", 1.0),),
    base_rate=50.0,
    burst_factor=4.0,
    tenants=3,
)


def _drive_service(workers):
    """Submit every arrival to a fresh service; return live telemetry."""
    import asyncio

    from concurrent.futures import ThreadPoolExecutor

    from repro.service.service import CampaignService

    arrivals = generate_trace(TRACE)

    async def scenario():
        service = CampaignService(
            workers=workers,
            pool_cls=ThreadPoolExecutor,
            max_depth=2 * len(arrivals) + 8,
            high_water=2 * len(arrivals) + 8,
        )
        await service.start()
        try:
            started = time.perf_counter()
            jobs = [service.submit(a.spec) for a in arrivals]
            for job in jobs:
                await service.result(job)
            elapsed = time.perf_counter() - started
            cached = sum(1 for job in jobs if job.cached)
            return elapsed, cached, sorted(service.wall_queue_latencies)
        finally:
            await service.close()

    return asyncio.run(scenario())


def test_service_throughput():
    report = {
        "provenance": build_provenance(
            seed=TRACE.seed, engine=TRACE.engine,
            workers=",".join(str(w) for w in WORKER_COUNTS),
        ),
        "benchmark": "service_throughput",
        "trace": TRACE.as_dict(),
        "workers": {},
    }
    rows = []
    for workers in WORKER_COUNTS:
        elapsed, cached, latencies = _drive_service(workers)
        jobs_per_sec = TRACE.requests / elapsed
        p50 = _percentile(latencies, 50.0) * 1000
        p95 = _percentile(latencies, 95.0) * 1000
        report["workers"][str(workers)] = {
            "seconds": round(elapsed, 6),
            "jobs_per_sec": round(jobs_per_sec, 1),
            "queue_p50_ms": round(p50, 3),
            "queue_p95_ms": round(p95, 3),
            "executed": TRACE.requests - cached,
            "cached": cached,
        }
        rows.append([
            workers, f"{elapsed:.3f}", f"{jobs_per_sec:.1f}",
            f"{p50:.2f}", f"{p95:.2f}", cached,
        ])

    # The determinism contract: the replay document is a pure function
    # of the trace spec, whatever the pool size.
    inline = replay_trace(TRACE, workers=0)
    pooled = _pooled_replay(TRACE, workers=WORKER_COUNTS[-1])
    assert summary_to_json(inline) == summary_to_json(pooled)
    report["determinism"] = {
        "digest": inline["digest"],
        "workers_compared": [0, WORKER_COUNTS[-1]],
    }

    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    emit(render_table(
        ["workers", "seconds", "jobs/sec", "p50 ms", "p95 ms", "cached"],
        rows,
    ))
    emit(f"replay digest (workers-invariant): {inline['digest']}")


def _pooled_replay(spec, workers):
    from concurrent.futures import ThreadPoolExecutor

    return replay_trace(spec, workers=workers, pool_cls=ThreadPoolExecutor)
