"""CG (NAS): conjugate gradient with a sparse matrix.

Shape: every CG iteration offloads several small kernels — the sparse
matrix-vector product (indirect ``x[colidx[j]]`` accesses, which cannot
be regularized because the gather index lives in the inner row loop) and
the vector updates/dot products.  The naive port pays per-kernel launch
and per-iteration vector transfers; merging hoists the whole solver loop
into one device region.  Table II: streaming (1.28x) and merging
(18.53x).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.transforms.streaming import StreamingOptions
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_ROWS = 448
PAPER_ROWS = 75_000  # "75 K Array"
NNZ_PER_ROW = 4
ITERS = 25

SOURCE = """
void main() {
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        x[i] = 1.0;
        r[i] = b[i];
        p[i] = b[i];
    }
    for (int it = 0; it < iters; it++) {
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            float sum = 0.0;
            for (int j = rowstart[i]; j < rowstart[i + 1]; j++) {
                sum += vals[j] * p[colidx[j]];
            }
            q[i] = sum;
        }
        float pq = 0.0;
#pragma omp parallel for reduction(+:pq)
        for (int i = 0; i < n; i++) {
            pq += p[i] * q[i];
        }
        float alpha = 0.1 / (pq + 1.0);
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            x[i] = x[i] + alpha * p[i];
            r[i] = r[i] - alpha * q[i];
            p[i] = r[i] + 0.5 * p[i];
        }
    }
}
"""


def make_arrays(seed=None):
    """Build the conjugate gradient benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 17)
    n = EXEC_ROWS
    nnz = n * NNZ_PER_ROW
    rowstart = np.arange(0, nnz + 1, NNZ_PER_ROW).astype(np.int32)
    return {
        "b": rng.random(n).astype(np.float32),
        "x": np.zeros(n, dtype=np.float32),
        "r": np.zeros(n, dtype=np.float32),
        "p": np.zeros(n, dtype=np.float32),
        "q": np.zeros(n, dtype=np.float32),
        "vals": (rng.random(nnz) * 0.1).astype(np.float32),
        "colidx": rng.integers(0, n, nnz).astype(np.int32),
        "rowstart": rowstart,
    }


def make() -> MiniCWorkload:
    """Construct the cg workload instance."""
    return MiniCWorkload(
        name="CG",
        source=SOURCE,
        table2=Table2Row(
            suite="NAS",
            paper_input="75 K array",
            kloc=0.524,
            streaming=1.28,
            merging=18.53,
        ),
        make_arrays=make_arrays,
        scalars={"n": EXEC_ROWS, "iters": ITERS},
        sim_scale=PAPER_ROWS / EXEC_ROWS,
        output_arrays=["x", "r", "p", "q"],
        array_length_hints={
            "vals": "n * 4",
            "colidx": "n * 4",
            "rowstart": "n + 1",
            "p": "n",
        },
        plan=OptimizationPlan(
            streaming_options=StreamingOptions(num_blocks=10)
        ),
        description="CG solver: SpMV + dot products offloaded per iteration",
    )
