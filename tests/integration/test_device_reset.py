"""End-to-end contract for device-reset recovery on streamed workloads.

The tentpole guarantee: a scripted ``device:reset`` in the middle of a
streamed pipeline completes **without host fallback**, with outputs and
dynamic op counters bit-identical to the uninterrupted run, re-uploading
only the blocks that were live at the reset — never the whole streamed
history — while simulated time strictly grows (recovery is never free).

Workloads are probed first with a no-fault plan to learn how many
offload entries (device-site draws) the run makes; the scripted reset
then lands squarely mid-pipeline.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultSpec, ResiliencePolicy
from repro.transforms.streaming import DEFAULT_NUM_BLOCKS
from repro.workloads.suite import get_workload

#: Every suite workload whose opt variant streams at least one loop
#: (verified empirically: each makes > 1 offload entry per run).
STREAMED = ("blackscholes", "kmeans", "CG", "nn")


def _policy():
    return ResiliencePolicy(checkpoint_interval=4)


def _offload_entries(name):
    """Device-site draws (offload entries) of one checkpointed run."""
    workload = get_workload(name, seed=0)
    plan = FaultPlan(scripted=[])
    machine = workload.machine(fault_plan=plan, resilience=_policy())
    workload.run("opt", machine=machine)
    return plan.operations("device")


@pytest.mark.parametrize("name", STREAMED)
def test_mid_pipeline_reset_is_survivable(name):
    baseline = get_workload(name, seed=0).run("opt")
    entries = _offload_entries(name)
    assert entries > 1, f"{name} is not streamed enough to reset mid-pipeline"

    workload = get_workload(name, seed=0)
    plan = FaultPlan(scripted=[FaultSpec("device", entries // 2, "reset")])
    machine = workload.machine(fault_plan=plan, resilience=_policy())
    run = workload.run("opt", machine=machine)
    stats = machine.fault_stats

    # Bit-identical outputs and op counters — recovery restored the
    # exact pre-reset image and resumed, it did not recompute on the
    # host or drop work.
    assert set(run.outputs) == set(baseline.outputs)
    for key in baseline.outputs:
        assert run.outputs[key].tobytes() == baseline.outputs[key].tobytes(), (
            f"{name}: output {key!r} differs after a survived reset"
        )
    assert run.stats.ops.as_dict() == baseline.stats.ops.as_dict()

    # The reset was survived by checkpoint/restart, not by giving the
    # work back to the host.
    assert stats.device_resets == 1
    assert stats.host_fallbacks == 0
    assert stats.recovery_actions.get("device") == {"reset_survived": 1}

    # Only live blocks were re-uploaded — a streamed pipeline holds a
    # couple of slots per array, never the whole block history.
    assert 0 < stats.blocks_reuploaded
    assert stats.blocks_reuploaded < DEFAULT_NUM_BLOCKS

    # Recovery is never free.
    assert run.time > baseline.time


@pytest.mark.parametrize("name", STREAMED)
def test_reset_recovery_is_deterministic(name):
    entries = _offload_entries(name)
    runs = []
    for _ in range(2):
        workload = get_workload(name, seed=0)
        plan = FaultPlan(scripted=[FaultSpec("device", entries // 2, "reset")])
        machine = workload.machine(fault_plan=plan, resilience=_policy())
        run = workload.run("opt", machine=machine)
        runs.append((run, machine.fault_stats.as_dict()))
    (first, first_stats), (second, second_stats) = runs
    assert first.time == second.time
    assert first_stats == second_stats
    for key in first.outputs:
        assert first.outputs[key].tobytes() == second.outputs[key].tobytes()


def test_two_resets_within_budget():
    entries = _offload_entries("blackscholes")
    workload = get_workload("blackscholes", seed=0)
    plan = FaultPlan(
        scripted=[
            FaultSpec("device", entries // 3, "reset"),
            FaultSpec("device", 2 * entries // 3, "reset"),
        ]
    )
    machine = workload.machine(fault_plan=plan, resilience=_policy())
    baseline = get_workload("blackscholes", seed=0).run("opt")
    run = workload.run("opt", machine=machine)
    assert machine.fault_stats.device_resets == 2
    assert machine.fault_stats.host_fallbacks == 0
    for key in baseline.outputs:
        assert run.outputs[key].tobytes() == baseline.outputs[key].tobytes()


def test_seeded_reset_campaign_contract():
    """A campaign with a hot device rate honours the full contract."""
    from repro.faults.campaign import run_campaign

    result = run_campaign(
        ["blackscholes"],
        scenarios=2,
        seed=3,
        rates={"device": 0.1},
        policy=ResiliencePolicy(checkpoint_interval=2, max_resets=64),
    )
    assert result.ok
    assert result.totals.device_resets > 0
    assert result.totals.host_fallbacks == 0
    summary = result.as_dict()
    assert summary["policy"]["checkpoint_interval"] == 2
    assert "recovery_actions" in summary["totals"]


def test_device_rate_without_checkpointing_is_rejected():
    from repro.faults.campaign import run_campaign

    with pytest.raises(ValueError, match="checkpoint_interval"):
        run_campaign(
            ["blackscholes"], scenarios=1, seed=0, rates={"device": 0.1}
        )
