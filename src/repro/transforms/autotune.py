"""Model-driven block-count selection for data streaming.

Section III-B derives the optimal number of streaming blocks N* from the
loop's total transfer time D, compute time C and the kernel launch
overhead K — "When C/N + K > D/N, the best N value will be sqrt(D/K).
When C/N + K <= D/N, the best N value will be (D - C)/K."  The paper
then sweeps N in {10, 20, 40, 50} experimentally.

This module closes the loop the way a profile-guided compiler would:

1. run the *unoptimized* offloaded program once on the simulated machine
   to measure D and C per offload site;
2. feed them through :func:`~repro.transforms.block_size.optimal_block_count`;
3. re-apply the streaming transform with the tuned N.

It is an extension beyond the paper's manual sweep, and the
``benchmarks/test_ablation_blocksize.py`` ablation validates the model
against a sweep.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.minic import ast_nodes as ast
from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.block_size import optimal_block_count
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.streaming import StreamingOptions


@dataclass
class TuneResult:
    """Outcome of a profile-guided streaming tuning run."""

    num_blocks: int
    measured_transfer: float
    measured_compute: float
    launch_overhead: float
    profile_time: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"N*={self.num_blocks} "
            f"(D={self.measured_transfer * 1000:.2f} ms, "
            f"C={self.measured_compute * 1000:.2f} ms, "
            f"K={self.launch_overhead * 1000:.2f} ms)"
        )


def profile_offload_costs(
    source: str,
    arrays: Dict[str, np.ndarray],
    scalars: Dict[str, object],
    machine: Optional[Machine] = None,
    entry: str = "main",
) -> TuneResult:
    """Measure D, C and K by running the unoptimized program once."""
    machine = machine or Machine()
    result = run_program(
        source, arrays=arrays, scalars=scalars, machine=machine, entry=entry
    )
    stats = result.stats
    k = machine.spec.mic.kernel_launch_overhead
    launches = max(1, stats.kernel_launches)
    return TuneResult(
        num_blocks=optimal_block_count(
            transfer=stats.transfer_time / launches,
            compute=stats.device_compute_time / launches,
            launch_overhead=k,
            min_blocks=2,
            max_blocks=256,
        ),
        measured_transfer=stats.transfer_time,
        measured_compute=stats.device_compute_time,
        launch_overhead=k,
        profile_time=stats.total_time,
    )


def tune_streaming(
    source: str,
    arrays_factory,
    scalars: Dict[str, object],
    plan: Optional[OptimizationPlan] = None,
    scale: float = 1.0,
    entry: str = "main",
) -> tuple:
    """Profile, pick N*, and return (optimized program, TuneResult).

    *arrays_factory* is a zero-argument callable returning fresh input
    arrays (the profile run consumes one set).
    """
    profile = profile_offload_costs(
        source,
        arrays=arrays_factory(),
        scalars=dict(scalars),
        machine=Machine(scale=scale),
        entry=entry,
    )
    plan = plan or OptimizationPlan()
    plan = dataclasses.replace(
        plan,
        streaming_options=dataclasses.replace(
            plan.streaming_options, num_blocks=profile.num_blocks
        ),
    )
    program = parse(source)
    CompOptimizer(plan).optimize(program)
    return program, profile
