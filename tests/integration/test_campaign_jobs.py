"""Campaign fan-out: worker count must be invisible in the summary.

Every scenario cell's fault plan is seeded by a pure function of the
campaign seed and the cell coordinates, and outcomes are collected in
submission order, so ``--jobs N`` must produce byte-identical summary
JSON for any N.  A worker crash or an interrupt must cancel outstanding
cells and surface the completed prefix as an explicitly partial result
instead of hanging.
"""

import itertools
import json
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import pytest

from repro.faults import campaign
from repro.faults.campaign import run_campaign
from repro.faults.stats import FaultStats

NAMES = ["blackscholes", "nn"]


def _summary(**kwargs):
    result = run_campaign(names=NAMES, scenarios=2, seed=7, **kwargs)
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def test_jobs_do_not_change_summary(monkeypatch):
    """jobs=2 must match jobs=1 byte for byte.

    A thread pool stands in for the process pool: it exercises the
    submit/collect path (ordering, partial handling) without per-test
    process spawn cost; the CI codegen-smoke job diffs real
    multiprocess output through the CLI.
    """
    sequential = _summary(jobs=1)
    monkeypatch.setattr(campaign, "_POOL_CLS", ThreadPoolExecutor)
    fanned = _summary(jobs=2)
    assert fanned == sequential


def test_jobs_do_not_change_multi_device_summary(monkeypatch):
    """The fan-out invariance holds for a fleet campaign under device
    loss: worker count must be invisible even when failover reshuffles
    blocks across devices mid-scenario."""
    kwargs = dict(
        devices=3,
        rates={"device": 0.1},
        policy=campaign.ResiliencePolicy(checkpoint_interval=4),
    )
    sequential = _summary(jobs=1, **kwargs)
    monkeypatch.setattr(campaign, "_POOL_CLS", ThreadPoolExecutor)
    fanned = _summary(jobs=3, **kwargs)
    assert fanned == sequential
    assert '"devices": 3' in sequential


def _assert_stats_equal(got: dict, want: dict):
    """Count fields must match exactly; the float seconds accumulators
    are only associative up to reordering ulps."""
    assert got.keys() == want.keys()
    for key, expected in want.items():
        if isinstance(expected, float):
            assert got[key] == pytest.approx(expected), key
        else:
            assert got[key] == expected, key


def test_fault_stats_merge_is_associative():
    """Satellite invariant behind the fan-out guarantee: folding
    per-worker partial FaultStats in any grouping yields the same
    totals, so the collector never has to care how cells were batched.
    (The byte-identical summary additionally relies on the collector
    folding in submission order, which pins the float rounding too.)"""
    result = run_campaign(
        names=NAMES,
        scenarios=2,
        seed=7,
        devices=2,
        rates={"device": 0.1, "h2d": 0.05, "h2d:silent": 0.05},
        policy=campaign.ResiliencePolicy(
            checkpoint_interval=4, integrity_mode="full"
        ),
    )
    parts = [outcome.stats for outcome in result.outcomes]
    assert len(parts) == 4
    reference = FaultStats.merge(parts)
    assert reference.total_injected > 0
    for split in range(1, len(parts)):
        left = FaultStats.merge(parts[:split])
        right = FaultStats.merge(parts[split:])
        _assert_stats_equal(
            FaultStats.merge([left, right]).as_dict(), reference.as_dict()
        )
    for ordering in itertools.permutations(parts):
        _assert_stats_equal(
            FaultStats.merge(ordering).as_dict(), reference.as_dict()
        )
    # The identity folds in too: merging nothing is a zero element.
    _assert_stats_equal(
        FaultStats.merge([FaultStats.merge([]), *parts]).as_dict(),
        reference.as_dict(),
    )


def test_tracing_is_incompatible_with_fanout():
    with pytest.raises(ValueError, match="jobs 1"):
        run_campaign(
            names=NAMES, scenarios=1, jobs=2,
            tracer_factory=lambda name, k: None,
        )


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match=">= 1"):
        run_campaign(names=NAMES, scenarios=1, jobs=0)


class _CrashAfterOne:
    """Pool double: the first cell completes, the second kills the pool
    (as a worker segfault would — ``BrokenProcessPool``)."""

    def __init__(self, max_workers=None):
        self.submitted = 0
        self.cancelled = False

    def submit(self, fn, *args, **kwargs):
        self.submitted += 1
        future: Future = Future()
        if self.submitted == 1:
            future.set_result(fn(*args, **kwargs))
        else:
            future.set_exception(BrokenExecutor("worker died"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.cancelled = cancel_futures


def test_worker_crash_yields_partial_prefix(monkeypatch):
    monkeypatch.setattr(campaign, "_POOL_CLS", _CrashAfterOne)
    result = run_campaign(names=NAMES, scenarios=2, seed=7, jobs=2)
    assert result.partial
    assert len(result.outcomes) == 1  # the completed prefix only
    assert result.outcomes[0].workload == NAMES[0]
    assert result.as_dict()["partial"] is True
    # ... and the full-campaign summary marks itself complete.
    full = run_campaign(names=NAMES, scenarios=1, seed=7)
    assert full.as_dict()["partial"] is False
