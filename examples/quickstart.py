#!/usr/bin/env python
"""Quickstart: optimize an offloaded loop with COMP and watch it run.

Takes the paper's running example — a blackscholes-style loop offloaded
to the coprocessor — applies the data streaming transformation, prints
the before/after source (the Figure 5 rewrite), and executes both
versions on the simulated machine to show the speedup and the device
memory saving.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CompOptimizer, parse, to_source
from repro.runtime.executor import Machine, run_program

SOURCE = """
void main() {
#pragma offload target(mic:0) in(sptprice : length(n)) in(strike : length(n)) in(n) out(prices : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        prices[i] = sqrt(sptprice[i] * strike[i]) * 0.5 + log(strike[i] + 1.0);
    }
}
"""

N = 4096
#: Simulate the paper-scale input (10^7 options) while executing 4096.
SCALE = 1.0e7 / N


def make_arrays():
    rng = np.random.default_rng(7)
    return {
        "sptprice": (rng.random(N) * 100 + 1).astype(np.float32),
        "strike": (rng.random(N) * 100 + 1).astype(np.float32),
        "prices": np.zeros(N, dtype=np.float32),
    }


def main() -> None:
    print("=== original source ===")
    print(SOURCE.strip())

    program = parse(SOURCE)
    result = CompOptimizer().optimize(program)
    print("\n=== applied optimizations ===")
    for report in result.reports:
        status = "applied" if report.applied else f"skipped ({report.reason})"
        print(f"  {report.name}: {status}")
        for detail in report.details:
            print(f"    - {detail}")

    print("\n=== transformed source (Figure 5 shape) ===")
    print(to_source(program))

    baseline_machine = Machine(scale=SCALE)
    baseline = run_program(
        SOURCE, arrays=make_arrays(), scalars={"n": N}, machine=baseline_machine
    )
    streamed_machine = Machine(scale=SCALE)
    streamed = run_program(
        program, arrays=make_arrays(), scalars={"n": N}, machine=streamed_machine
    )

    assert np.array_equal(baseline.array("prices"), streamed.array("prices")), (
        "transformed program must compute identical results"
    )

    t0, t1 = baseline.stats.total_time, streamed.stats.total_time
    m0 = baseline_machine.device_memory.peak
    m1 = streamed_machine.device_memory.peak
    print("=== simulated execution (paper-scale input) ===")
    print(f"unoptimized offload : {t0 * 1000:8.2f} ms, "
          f"device peak {m0 / 2**20:7.1f} MiB")
    print(f"with data streaming : {t1 * 1000:8.2f} ms, "
          f"device peak {m1 / 2**20:7.1f} MiB")
    print(f"speedup {t0 / t1:.2f}x, memory reduced by {1 - m1 / m0:.0%}")
    print("outputs verified identical.")

    from repro.experiments.report import render_gantt

    print("\n=== pipeline timeline, unoptimized (Figure 5(d) top) ===")
    print(render_gantt(baseline_machine.timeline,
                       ["dma:h2d", "mic", "dma:d2h"]))
    print("\n=== pipeline timeline, streamed (Figure 5(d) bottom) ===")
    print(render_gantt(streamed_machine.timeline,
                       ["dma:h2d", "mic", "dma:d2h"]))


if __name__ == "__main__":
    main()
