"""Fleet-layer unit tests: sharding, health transitions, failover.

These drive :class:`~repro.runtime.fleet.DeviceFleet` directly against a
real machine's COI runtime (clock, timeline, DMA channels) so the
accounting the integration differential relies on — probe charges,
quarantine eligibility, eviction budgets, redistribution footprints — is
pinned at the unit level.
"""

import pytest

from repro.faults.policy import ResiliencePolicy
from repro.faults.stats import FaultStats
from repro.hardware.device import PROBE_SEMANTICS, RESET_SEMANTICS, ProbeSemantics
from repro.runtime.executor import Machine
from repro.runtime.fleet import DeviceFleet

ALWAYS = ProbeSemantics(cost=0.010, readmit_probability=1.0)
NEVER = ProbeSemantics(cost=0.010, readmit_probability=0.0)


def _fleet(count=2, seed=None, policy=None, probe=PROBE_SEMANTICS, stats=None):
    """A fleet wired to a fresh machine's COI runtime."""
    machine = Machine(devices=1)
    fleet = DeviceFleet(
        machine.spec,
        machine.scale,
        count,
        seed=seed,
        policy=policy if policy is not None else ResiliencePolicy(),
        stats=stats,
        probe=probe,
    )
    machine.coi.fleet = fleet
    return fleet, machine.coi


def _quarantine(fleet, dev):
    dev.health.state = "quarantined"
    dev.health.resets_survived += 1
    dev.health.quarantined_at = fleet.total_assigned


class TestConstruction:
    def test_rejects_single_device(self):
        machine = Machine(devices=1)
        with pytest.raises(ValueError, match="at least 2"):
            DeviceFleet(machine.spec, machine.scale, 1)

    def test_machine_builds_fleet_only_above_one(self):
        assert Machine(devices=1).fleet is None
        machine = Machine(devices=3)
        assert machine.fleet is not None
        assert [d.device_id for d in machine.fleet.devices] == [
            "dev0", "dev1", "dev2",
        ]


class TestSharding:
    def test_blocks_deal_round_robin(self):
        fleet, coi = _fleet(count=3)
        order = [fleet.begin_block(coi).index for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]
        assert all(d.blocks_assigned == 2 for d in fleet.devices)

    def test_quarantined_device_receives_no_blocks(self):
        fleet, coi = _fleet(count=3, probe=NEVER)
        _quarantine(fleet, fleet.devices[1])
        order = [fleet.begin_block(coi).index for _ in range(4)]
        assert 1 not in order

    def test_placement_sticks_to_first_owner(self):
        fleet, coi = _fleet(count=2)
        fleet.begin_block(coi)  # dev0 active
        first = fleet.device_for_alloc("A")
        fleet.note_alloc("A", first, 1024.0)
        fleet.begin_block(coi)  # dev1 active
        assert fleet.device_for_alloc("A") is first
        assert fleet.owner_of("A") is first
        fleet.note_free("A")
        assert fleet.owner_of("A") is None


class TestQuarantineAndProbes:
    def test_probe_waits_for_a_newer_block(self):
        """The re-assignment of the dropped block itself must never
        re-admit the card that just dropped it."""
        fleet, coi = _fleet(count=2, probe=ALWAYS)
        dev0 = fleet.devices[0]
        _quarantine(fleet, dev0)
        fleet.begin_block(coi)  # same ordinal: not yet eligible
        assert dev0.health.state == "quarantined"
        assert dev0.health.probes_sent == 0
        fleet.begin_block(coi)  # one newer block assigned: eligible now
        assert dev0.health.state == "healthy"
        assert dev0.health.probes_sent == 1

    def test_probe_charges_time_and_stats(self):
        stats = FaultStats()
        fleet, coi = _fleet(count=2, probe=NEVER, stats=stats)
        _quarantine(fleet, fleet.devices[0])
        fleet.total_assigned += 1  # make the probe eligible
        before = coi.clock.now
        fleet.begin_block(coi)
        assert coi.clock.now == pytest.approx(before + NEVER.cost)
        assert stats.readmission_probes == 1
        assert stats.recovery_seconds == pytest.approx(NEVER.cost)
        assert stats.recovery_actions["dev0:device"]["probe"] == 1
        assert fleet.devices[0].health.state == "quarantined"

    def test_probe_coins_are_seed_deterministic(self):
        first, _ = _fleet(count=2, seed=42)
        second, _ = _fleet(count=2, seed=42)
        for device in (0, 1):
            a = [float(first._probe_rng(device).random()) for _ in range(8)]
            b = [float(second._probe_rng(device).random()) for _ in range(8)]
            assert a == b
        # ... and decorrelated across devices.
        third, _ = _fleet(count=2, seed=42)
        assert [float(third._probe_rng(0).random()) for _ in range(8)] != [
            float(third._probe_rng(1).random()) for _ in range(8)
        ]

    def test_force_readmit_picks_least_failed_card(self):
        stats = FaultStats()
        fleet, coi = _fleet(count=3, probe=NEVER, stats=stats)
        for index, resets in ((0, 3), (1, 1), (2, 2)):
            dev = fleet.devices[index]
            _quarantine(fleet, dev)
            dev.health.resets_survived = resets
        dev = fleet.begin_block(coi)
        assert dev.index == 1  # fewest survived resets wins
        assert dev.health.state == "healthy"
        assert stats.readmissions == 1
        # The forced probe is still paid for.
        assert stats.recovery_actions["dev1:device"]["probe"] == 1


class TestFailover:
    def test_loss_within_budget_quarantines(self):
        stats = FaultStats()
        fleet, coi = _fleet(
            count=2, policy=ResiliencePolicy(max_resets=8), stats=stats
        )
        lost = fleet.begin_block(coi)
        fleet.handle_device_loss(coi)
        assert lost.health.state == "quarantined"
        assert lost.health.quarantined_at == fleet.total_assigned
        assert stats.quarantines == 1
        assert stats.device_resets == 1
        assert fleet.active is None

    def test_loss_past_budget_evicts(self):
        stats = FaultStats()
        fleet, coi = _fleet(
            count=2, policy=ResiliencePolicy(max_resets=0), stats=stats
        )
        lost = fleet.begin_block(coi)
        fleet.handle_device_loss(coi)
        assert lost.health.evicted
        assert stats.device_evictions == 1
        assert stats.recovery_actions["dev0:device"]["evicted"] == 1
        assert not fleet.exhausted
        fleet.begin_block(coi)
        fleet.handle_device_loss(coi)
        assert fleet.exhausted
        assert fleet.begin_block(coi) is None

    def test_loss_charges_reset_overhead(self):
        fleet, coi = _fleet(count=2)
        fleet.begin_block(coi)
        before = coi.clock.now
        fleet.handle_device_loss(coi)
        overhead = RESET_SEMANTICS.overhead(fleet.spec.mic.threads_used)
        assert coi.clock.now >= before + overhead

    def test_buffers_redistribute_to_survivor(self):
        stats = FaultStats()
        fleet, coi = _fleet(count=2, stats=stats)
        lost = fleet.begin_block(coi)
        for name in ("A", "B", "C"):
            lost.memory.allocate(name, 4096.0)
            fleet.note_alloc(name, lost, 4096.0)
        survivor = fleet.devices[1]
        fleet.handle_device_loss(coi)
        assert lost.memory.in_use == 0  # the card's state is gone
        for name in ("A", "B", "C"):
            assert fleet.owner_of(name) is survivor
        assert survivor.blocks_absorbed == 3
        assert survivor.memory.in_use > 0
        assert stats.blocks_reuploaded == 3  # full-footprint resends
        assert stats.recovery_actions["dev1:device"]["absorbed_block"] == 3

    def test_charged_footprint_survives_the_move(self):
        """A buffer absorbed once must keep its unscaled footprint so a
        second loss re-sends the right byte count."""
        fleet, coi = _fleet(count=3)
        dev0 = fleet.begin_block(coi)
        dev0.memory.allocate("A", 8192.0)
        fleet.note_alloc("A", dev0, 8192.0)
        fleet.handle_device_loss(coi)
        assert fleet._charged["A"] == 8192.0
        owner = fleet.owner_of("A")
        assert owner is not None and owner is not dev0
