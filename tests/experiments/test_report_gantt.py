"""Tests for the Gantt renderer and streaming-overlap visibility."""

import numpy as np

from repro.experiments.report import render_gantt
from repro.hardware.event_sim import Timeline
from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.streaming import StreamingOptions, apply_streaming


class TestRenderGantt:
    def test_empty_timeline(self):
        assert render_gantt(Timeline()) == "(empty timeline)"

    def test_rows_per_resource(self):
        tl = Timeline()
        tl.schedule("dma", 1.0)
        tl.schedule("mic", 2.0)
        text = render_gantt(tl)
        assert "dma" in text and "mic" in text
        assert text.count("ms busy") == 2

    def test_occupancy_marks(self):
        tl = Timeline()
        tl.schedule("mic", 10.0)
        row = [l for l in render_gantt(tl, width=20).splitlines() if "mic" in l][0]
        bar = row.split("|")[1]
        assert bar.count("#") >= 19  # busy the whole makespan

    def test_explicit_resource_selection(self):
        tl = Timeline()
        tl.schedule("a", 1.0)
        tl.schedule("b", 1.0)
        text = render_gantt(tl, resources=["a"])
        assert "a |" in text
        assert "b |" not in text

    def test_gap_left_blank(self):
        tl = Timeline()
        first = tl.schedule("mic", 1.0)
        tl.schedule("dma", 8.0)
        tl.schedule("mic", 1.0, deps=[tl.schedule("dma", 1.0)])
        row = [l for l in render_gantt(tl, width=40).splitlines() if l.startswith("mic")][0]
        assert " " in row.split("|")[1]


class TestStreamingOverlapVisible:
    def test_dma_and_device_overlap_in_streamed_run(self):
        source = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = sqrt(A[i]) * 3.0; }
        }
        """
        n = 1 << 12
        prog = parse(source)
        apply_streaming(prog, StreamingOptions(num_blocks=8))
        machine = Machine(scale=4000.0)
        run_program(
            prog,
            arrays={
                "A": np.ones(n, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            },
            scalars={"n": n},
            machine=machine,
        )
        # Quantify overlap: total busy across DMA+device exceeds the
        # makespan, which is only possible with concurrency.
        busy = (
            machine.timeline.busy_time("dma:h2d")
            + machine.timeline.busy_time("mic")
            + machine.timeline.busy_time("dma:d2h")
        )
        assert busy > machine.timeline.finish_time() * 1.1
