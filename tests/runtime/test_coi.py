"""Tests for the COI-like low-level runtime."""

import numpy as np
import pytest

from repro.errors import MissingTransferError, RuntimeFault
from repro.hardware.event_sim import Event
from repro.runtime.executor import Machine


@pytest.fixture
def machine():
    return Machine()


@pytest.fixture
def coi(machine):
    return machine.coi


class TestBuffers:
    def test_alloc_creates_device_array(self, coi, machine):
        buf = coi.alloc_buffer("A", 16)
        assert len(buf) == 16
        assert machine.device.holds("A")
        assert machine.device_memory.size_of("A") == 64

    def test_alloc_dtype(self, coi):
        buf = coi.alloc_buffer("D", 4, dtype=np.float64)
        assert buf.dtype == np.float64

    def test_realloc_keeps_contents_when_large_enough(self, coi):
        buf = coi.alloc_buffer("A", 8)
        buf[:] = 7.0
        again = coi.alloc_buffer("A", 8)
        assert np.all(again == 7.0)

    def test_realloc_grows(self, coi):
        coi.alloc_buffer("A", 8)
        buf = coi.alloc_buffer("A", 32)
        assert len(buf) == 32

    def test_free(self, coi, machine):
        coi.alloc_buffer("A", 8)
        coi.free_buffer("A")
        assert not machine.device.holds("A")
        assert machine.device_memory.in_use == 0

    def test_free_unknown_is_noop(self, coi):
        coi.free_buffer("never-existed")


class TestTransfers:
    def test_write_copies_data(self, coi, machine):
        coi.alloc_buffer("A", 8)
        coi.write_buffer("A", 2, np.arange(4, dtype=np.float32))
        assert list(machine.device.array("A")[2:6]) == [0, 1, 2, 3]

    def test_write_advances_clock_when_sync(self, coi, machine):
        coi.alloc_buffer("A", 1024)
        before = machine.clock.now
        coi.write_buffer("A", 0, np.zeros(1024, dtype=np.float32))
        assert machine.clock.now > before

    def test_async_write_does_not_block(self, coi, machine):
        coi.alloc_buffer("A", 1024)
        before = machine.clock.now
        event = coi.write_buffer(
            "A", 0, np.zeros(1024, dtype=np.float32), sync=False
        )
        assert machine.clock.now == before
        assert event.time > before

    def test_write_range_check(self, coi):
        coi.alloc_buffer("A", 4)
        with pytest.raises(RuntimeFault):
            coi.write_buffer("A", 2, np.zeros(4, dtype=np.float32))

    def test_write_to_missing_buffer(self, coi):
        with pytest.raises(MissingTransferError):
            coi.write_buffer("ghost", 0, np.zeros(4, dtype=np.float32))

    def test_read_copies_back(self, coi):
        buf = coi.alloc_buffer("A", 8)
        buf[:] = np.arange(8)
        host = np.zeros(8, dtype=np.float32)
        coi.read_buffer("A", 4, 4, host, 0)
        assert list(host[:4]) == [4, 5, 6, 7]

    def test_read_range_check(self, coi):
        coi.alloc_buffer("A", 4)
        with pytest.raises(RuntimeFault):
            coi.read_buffer("A", 2, 4, np.zeros(8, dtype=np.float32), 0)

    def test_stats_accumulate(self, coi):
        coi.alloc_buffer("A", 256)
        coi.write_buffer("A", 0, np.zeros(256, dtype=np.float32))
        coi.read_buffer("A", 0, 256, np.zeros(256, dtype=np.float32), 0)
        assert coi.stats.bytes_to_device == 1024
        assert coi.stats.bytes_from_device == 1024
        assert coi.stats.transfers_to_device == 1
        assert coi.stats.transfers_from_device == 1

    def test_scale_multiplies_bytes(self):
        machine = Machine(scale=10.0)
        machine.coi.alloc_buffer("A", 16)
        machine.coi.write_buffer("A", 0, np.zeros(16, dtype=np.float32))
        assert machine.coi.stats.bytes_to_device == 640

    def test_raw_transfer_directions(self, coi):
        coi.raw_transfer(1 << 20, to_device=True)
        coi.raw_transfer(1 << 19, to_device=False)
        assert coi.stats.bytes_to_device == 1 << 20
        assert coi.stats.bytes_from_device == 1 << 19


class TestKernels:
    def test_launch_charges_overhead(self, coi, machine):
        event = coi.launch_kernel(0.001)
        assert event.time == pytest.approx(
            0.001 + machine.spec.mic.kernel_launch_overhead
        )
        assert coi.stats.kernel_launches == 1

    def test_persistent_first_launch_pays_k(self, coi, machine):
        event = coi.launch_kernel(0.0, persistent_key="loop1")
        assert event.time == pytest.approx(
            machine.spec.mic.kernel_launch_overhead
        )

    def test_persistent_reuse_pays_signal(self, coi, machine):
        coi.launch_kernel(0.0, persistent_key="loop1")
        second = coi.launch_kernel(0.0, persistent_key="loop1")
        expected = (
            machine.spec.mic.kernel_launch_overhead
            + machine.spec.mic.signal_overhead
        )
        assert second.time == pytest.approx(expected)
        assert coi.stats.kernel_signals == 1

    def test_distinct_sessions_each_pay_k(self, coi):
        coi.launch_kernel(0.0, persistent_key="a")
        coi.launch_kernel(0.0, persistent_key="b")
        assert coi.stats.kernel_launches == 2

    def test_end_persistent_forces_relaunch(self, coi):
        coi.launch_kernel(0.0, persistent_key="a")
        coi.end_persistent("a")
        coi.launch_kernel(0.0, persistent_key="a")
        assert coi.stats.kernel_launches == 2

    def test_kernel_compute_seconds_excludes_overhead(self, coi):
        coi.launch_kernel(0.25)
        assert coi.stats.kernel_compute_seconds == pytest.approx(0.25)

    def test_kernel_waits_for_deps(self, coi, machine):
        transfer = machine.timeline.schedule("dma:h2d", 1.0)
        kernel = coi.launch_kernel(0.5, deps=[transfer])
        assert kernel.time >= 1.5


class TestSignals:
    def test_post_and_wait(self, coi, machine):
        coi.post_signal("tag", [Event(5.0)])
        coi.wait_signal("tag")
        assert machine.clock.now == 5.0

    def test_wait_unknown_tag_is_noop(self, coi, machine):
        coi.wait_signal("never-posted")
        assert machine.clock.now == 0.0

    def test_signals_accumulate_per_tag(self, coi, machine):
        coi.post_signal("t", [Event(1.0)])
        coi.post_signal("t", [Event(3.0)])
        coi.wait_signal("t")
        assert machine.clock.now == 3.0

    def test_wait_consumes_the_tag(self, coi, machine):
        coi.post_signal("t", [Event(2.0)])
        coi.wait_signal("t")
        machine.clock.now = 0.0
        coi.wait_signal("t")
        assert machine.clock.now == 0.0
