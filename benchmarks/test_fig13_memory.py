"""Figure 13: device memory usage after applying data streaming.

Streaming's double-buffering keeps only two block buffers per input
array on the device.  Paper: usage drops by more than 80% on the
streamed benchmarks.  (CG's footprint is dominated by its resident
sparse matrix, which streaming leaves on the device.)
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure13
from repro.experiments.report import render_figure


def test_figure13_memory_usage(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure13(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    deep_cuts = [v for n, v in fig.series.items() if n != "CG"]
    assert all(v < 0.35 for v in deep_cuts)
    assert min(fig.series.values()) < 0.1
