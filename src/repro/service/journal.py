"""Write-ahead job journal: checksummed JSON-lines service state.

PR 9 made the service survive *worker* crashes; this module makes it
survive crashes of the server process itself.  Every accepted
:class:`~repro.service.jobs.JobSpec` is appended to an append-only
JSON-lines journal *before* the client is told ``queued``, and a
terminal record is appended when the job reaches a terminal state
(``done`` / ``failed`` / ``timeout``).  On restart,
:func:`replay_journal` folds the file back into service state: jobs
with an accepted record but no terminal record are re-admitted, jobs
with a terminal record are not.  Journaling is at-least-once (a crash
can duplicate an accepted record; a restart replays into a journal that
keeps growing), but replay deduplicates on the job's full provenance
sha256, and the shared result store serves re-admitted duplicates from
cache — so recovery is exactly-once *in effect*.

Every line is independently checksummed (``crc32`` over the canonical
payload JSON, hex-prefixed), echoing the checksum-at-boundary
discipline the integrity layer applies to device buffers: persisted
state is never trusted on load.  A corrupt line — truncated tail from a
mid-write crash, bit flip, garbage — is *dropped and counted*, never
replayed and never raised on; replay of any byte string terminates and
is a pure function of the file contents, so replaying a journal twice
yields identical state.

Durability cadence is the ``sync`` knob, shared with the persistent
result store (:mod:`repro.service.persist`):

* ``always`` — ``fsync`` after every append (safe against power loss,
  slowest);
* ``batch`` — ``fsync`` every *batch_every* appends and on close (the
  default; safe against process crashes, bounded loss on power cut);
* ``off`` — never ``fsync`` (the OS page cache still survives a
  SIGKILL of the process, only a machine crash loses tail records).

Writes go through an unbuffered file handle, so each record is a single
``write(2)`` of one complete line — a killed process can lose the tail
of the journal but cannot interleave half-written records.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.metrics import NULL_METRICS

__all__ = [
    "SYNC_MODES",
    "TERMINAL_STATES",
    "JobJournal",
    "JournalReplay",
    "encode_record",
    "decode_record",
    "replay_journal",
]

#: Valid fsync cadences for the durability layer.
SYNC_MODES = ("always", "batch", "off")

#: Job states that end a journal entry's life: a key with one of these
#: recorded is never re-admitted on recovery.
TERMINAL_STATES = ("done", "failed", "timeout")


def validate_sync_mode(sync: str) -> str:
    """Return *sync* or raise a ValueError naming the valid modes."""
    if sync not in SYNC_MODES:
        raise ValueError(
            f"unknown sync mode {sync!r}: valid modes are "
            + ", ".join(SYNC_MODES)
        )
    return sync


def encode_record(payload: dict) -> bytes:
    """One checksummed journal line: ``crc32hex SP canonical-json LF``.

    The CRC covers the canonical (sorted-key, no-whitespace) JSON blob,
    so any byte damage to the line — including truncation, which also
    loses the trailing newline — fails verification on load.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(blob.encode("utf-8"))
    return f"{crc:08x} {blob}\n".encode("utf-8")


def decode_record(raw: bytes) -> Optional[dict]:
    """Verify and decode one journal line; None for anything corrupt.

    Rejects (returns None, never raises): undecodable bytes, a missing
    trailing newline (truncated final line from a mid-write crash), a
    malformed CRC prefix, a CRC mismatch (bit flips), invalid JSON, and
    non-dict payloads.
    """
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        return None
    if not text.endswith("\n"):
        return None
    head, sep, blob = text[:-1].partition(" ")
    if not sep or len(head) != 8:
        return None
    try:
        want = int(head, 16)
    except ValueError:
        return None
    if zlib.crc32(blob.encode("utf-8")) != want:
        return None
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError:
        return None
    return payload if isinstance(payload, dict) else None


class JobJournal:
    """Append-only write-ahead journal of accepted and finished jobs.

    *path* is created (with parents) on first open.  *metrics* receives
    ``<name>.appends`` / ``<name>.fsyncs`` counters so an operator can
    watch journal traffic next to the rest of the service telemetry.
    """

    def __init__(
        self,
        path,
        sync: str = "batch",
        batch_every: int = 16,
        metrics=None,
        name: str = "service.journal",
    ) -> None:
        validate_sync_mode(sync)
        if batch_every < 1:
            raise ValueError(f"batch_every must be >= 1, got {batch_every}")
        self.path = str(path)
        self.sync = sync
        self.batch_every = batch_every
        self.name = name
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.appends = 0
        self.fsyncs = 0
        self._since_sync = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # Unbuffered: one append is one write(2) of one whole line.
        self._fh = open(self.path, "ab", buffering=0)

    @property
    def closed(self) -> bool:
        return self._fh is None

    # -- appends ------------------------------------------------------------

    def append_accepted(self, key_sha: str, spec_payload: dict) -> None:
        """Journal one admitted job: its provenance sha and full spec."""
        self._append({
            "record": "accepted",
            "key": key_sha,
            "spec": spec_payload,
        })

    def append_terminal(self, key_sha: str, status: str) -> None:
        """Journal a terminal state; *status* must be a terminal state."""
        if status not in TERMINAL_STATES:
            raise ValueError(
                f"unknown terminal status {status!r}: valid states are "
                + ", ".join(TERMINAL_STATES)
            )
        self._append({
            "record": "terminal",
            "key": key_sha,
            "status": status,
        })

    def _append(self, payload: dict) -> None:
        if self._fh is None:
            raise RuntimeError("journal is closed")
        self._fh.write(encode_record(payload))
        self.appends += 1
        self.metrics.counter(f"{self.name}.appends").inc()
        if self.sync == "always":
            self._fsync()
        elif self.sync == "batch":
            self._since_sync += 1
            if self._since_sync >= self.batch_every:
                self._fsync()

    def _fsync(self) -> None:
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._since_sync = 0
        self.metrics.counter(f"{self.name}.fsyncs").inc()

    def flush(self) -> None:
        """Force an fsync now (no-op when closed or nothing pending)."""
        if self._fh is not None and self._since_sync:
            self._fsync()

    def close(self) -> None:
        """Final fsync (unless ``sync=off``) and close; idempotent."""
        if self._fh is None:
            return
        if self.sync != "off" and self._since_sync:
            self._fsync()
        self._fh.close()
        self._fh = None

    # -- observation --------------------------------------------------------

    def stats(self) -> dict:
        """Journal telemetry, JSON-ready (for snapshots and `stats`)."""
        return {
            "path": self.path,
            "sync": self.sync,
            "appends": self.appends,
            "fsyncs": self.fsyncs,
        }


@dataclass
class JournalReplay:
    """The folded state of one journal file (see :func:`replay_journal`)."""

    #: Accepted jobs with no terminal record, first-acceptance order:
    #: provenance sha -> spec payload.  These are re-admitted on recovery.
    pending: Dict[str, dict] = field(default_factory=dict)
    #: Finished jobs: provenance sha -> terminal status.
    terminal: Dict[str, str] = field(default_factory=dict)
    #: Total lines seen (valid or not).
    records: int = 0
    #: Valid accepted / terminal records (duplicates included).
    accepted: int = 0
    terminals: int = 0
    #: Lines dropped for failing verification — truncated tails,
    #: bit-flipped CRCs, garbage, or well-formed lines of unknown shape.
    dropped_corrupt: int = 0
    #: At-least-once artifacts: re-journaled accepts for a key already
    #: pending or terminal, and repeated terminal records for one key.
    duplicate_accepts: int = 0
    duplicate_terminals: int = 0


def replay_journal(path) -> JournalReplay:
    """Fold a journal file into a :class:`JournalReplay`; never raises.

    Pure function of the file bytes: replaying the same journal twice
    yields identical state (the recovery idempotence property).  A
    missing file is an empty journal.  Corrupt lines are skipped and
    counted; an accepted record for an already-terminal key is counted
    as a duplicate and does *not* resurrect the job.
    """
    replay = JournalReplay()
    path = str(path)
    if not os.path.exists(path):
        return replay
    with open(path, "rb") as fh:
        for raw in fh:
            replay.records += 1
            payload = decode_record(raw)
            if payload is None:
                replay.dropped_corrupt += 1
                continue
            record = payload.get("record")
            key = payload.get("key")
            if (
                record == "accepted"
                and isinstance(key, str)
                and isinstance(payload.get("spec"), dict)
            ):
                replay.accepted += 1
                if key in replay.terminal or key in replay.pending:
                    replay.duplicate_accepts += 1
                else:
                    replay.pending[key] = payload["spec"]
            elif (
                record == "terminal"
                and isinstance(key, str)
                and payload.get("status") in TERMINAL_STATES
            ):
                replay.terminals += 1
                if key in replay.terminal:
                    replay.duplicate_terminals += 1
                else:
                    replay.terminal[key] = payload["status"]
                    replay.pending.pop(key, None)
            else:
                # A line that verified but isn't a known record shape
                # (e.g. written by a future schema): drop, count, move on.
                replay.dropped_corrupt += 1
    return replay
