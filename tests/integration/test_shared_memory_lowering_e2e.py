"""End-to-end Section V: the compiler half meets the runtime half.

A ferret-style loader allocates tens of thousands of shared objects.
Running it as written (through MYO's ``Offload_shared_malloc``) trips the
allocation-count limit — the Table III failure.  After
:func:`~repro.transforms.shared_memory.lower_shared_memory` rewrites the
allocation sites to ``arena_alloc``, the *same program* runs to
completion against the segmented arena.
"""

import pytest

from repro.errors import MyoLimitError
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.runtime.executor import Machine, run_program
from repro.transforms.shared_memory import lower_shared_memory

LOADER = """
void main() {
    loaded = 0;
    for (int img = 0; img < nimages; img++) {
        hdr = Offload_shared_malloc(64);
        fvec = Offload_shared_malloc(1024);
        for (int r = 0; r < 21; r++) {
            region = Offload_shared_malloc(1084);
        }
        loaded = loaded + 1;
    }
}
"""

#: 3500 images x 23 allocations = 80,500 > MYO's 65,536 descriptor slots.
N_IMAGES = 3500


class TestMyoPathFails:
    def test_myo_hits_allocation_limit(self):
        with pytest.raises(MyoLimitError):
            run_program(LOADER, scalars={"nimages": N_IMAGES})

    def test_small_input_runs_under_myo(self):
        machine = Machine()
        result = run_program(
            LOADER, scalars={"nimages": 100}, machine=machine
        )
        assert result.scalar("loaded") == 100
        assert machine.myo.stats.allocations == 100 * 23


class TestArenaPathSucceeds:
    def test_lowered_program_completes_at_full_scale(self):
        program = parse(LOADER)
        report = lower_shared_memory(program)
        assert report.applied
        assert "3 allocation site" in report.details[0]
        machine = Machine()
        result = run_program(
            program, scalars={"nimages": N_IMAGES}, machine=machine
        )
        assert result.scalar("loaded") == N_IMAGES
        assert machine.arena.alloc_count == N_IMAGES * 23

    def test_lowered_source_round_trips(self):
        program = parse(LOADER)
        lower_shared_memory(program)
        printed = to_source(program)
        assert "arena_alloc(" in printed
        assert "Offload_shared_malloc" not in printed
        assert parse(printed) == program

    def test_arena_addresses_are_distinct(self):
        src = """
        void main() {
            a = arena_alloc(64);
            b = arena_alloc(64);
            diff = b - a;
        }
        """
        result = run_program(src)
        assert result.scalar("diff") == 64

    def test_free_is_accepted(self):
        result = run_program(
            "void main() { p = arena_alloc(16); arena_free(p); ok = 1; }"
        )
        assert result.scalar("ok") == 1
