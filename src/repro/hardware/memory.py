"""Coprocessor memory manager.

The MIC has no disk and no swap (Section II-A / III-B): once the 8 GB of
GDDR5 minus the OS reservation is exhausted, an allocation fails — in the
paper's words, "MIC will give out a runtime error".  The manager tracks
named allocations, enforces the capacity, and records the peak usage that
Figure 13 reports.

A *scale* factor converts executed sizes into simulated sizes: workloads
run at a reduced element count for tractable interpretation while memory
accounting (and timing) reflect the paper-scale inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import DeviceOutOfMemory, HardwareError


@dataclass
class Allocation:
    name: str
    nbytes: int


@dataclass
class DeviceMemoryManager:
    """Tracks allocations against a hard capacity."""

    capacity: int
    scale: float = 1.0
    allocations: Dict[str, Allocation] = field(default_factory=dict)
    in_use: int = 0
    peak: int = 0
    total_allocated: int = 0
    alloc_count: int = 0
    #: Optional fault injector; when set, allocations may be failed with
    #: an injected :class:`DeviceOutOfMemory` (site ``"alloc"``).
    injector: Optional[object] = None
    #: Full device resets this manager has been wiped by.
    device_resets: int = 0
    #: Fleet device index this manager belongs to; ``None`` for the
    #: single-device runtime (keeps its draws on the legacy stream).
    device_index: Optional[int] = None

    def allocate(self, name: str, nbytes: float) -> Allocation:
        """Allocate *nbytes* (executed scale) under *name*.

        Allocating an existing name grows it to the larger size (matching
        LEO's ``alloc_if`` semantics where re-offloads reuse buffers).
        """
        scaled = int(nbytes * self.scale)
        if scaled < 0:
            raise HardwareError(f"negative allocation for {name!r}")
        if self.injector is not None and (
            self.injector.draw("alloc", device=self.device_index) is not None
        ):
            raise DeviceOutOfMemory(
                scaled, self.in_use, self.capacity, name=name, injected=True
            )
        existing = self.allocations.get(name)
        if existing is not None:
            growth = max(0, scaled - existing.nbytes)
            self._charge(growth, name)
            existing.nbytes = max(existing.nbytes, scaled)
            return existing
        self._charge(scaled, name)
        alloc = Allocation(name, scaled)
        self.allocations[name] = alloc
        self.alloc_count += 1
        return alloc

    def _charge(self, nbytes: int, name: str = None) -> None:
        if self.in_use + nbytes > self.capacity:
            raise DeviceOutOfMemory(nbytes, self.in_use, self.capacity, name=name)
        self.in_use += nbytes
        self.total_allocated += nbytes
        self.peak = max(self.peak, self.in_use)

    def free(self, name: str) -> None:
        """Release the named allocation."""
        alloc = self.allocations.pop(name, None)
        if alloc is None:
            raise HardwareError(f"free of unknown allocation {name!r}")
        self.in_use -= alloc.nbytes

    def free_all(self) -> None:
        """Release every allocation (program teardown)."""
        self.allocations.clear()
        self.in_use = 0

    def reset(self) -> None:
        """Wipe every allocation after a full device reset.

        Unlike :meth:`free_all` this is a *failure*, not a teardown: the
        reset count is recorded, and peak/total accounting is preserved —
        Figure 13's peak usage spans the whole run, resets included.
        """
        self.allocations.clear()
        self.in_use = 0
        self.device_resets += 1

    def holds(self, name: str) -> bool:
        """True when *name* is currently allocated."""
        return name in self.allocations

    def resident_bytes(self) -> int:
        """Simulated bytes currently resident on the device.

        This is what a background integrity scrub has to scan — every
        live allocation at its charged (scaled) size.
        """
        return self.in_use

    def size_of(self, name: str) -> int:
        """Bytes held by *name* (0 when absent)."""
        alloc = self.allocations.get(name)
        return 0 if alloc is None else alloc.nbytes
