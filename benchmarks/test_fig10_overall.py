"""Figure 10: application speedups over the parallel CPU implementation.

Shape targets: 9 of 12 benchmarks beat the CPU after optimization
(paper: 9 of 12); exactly 5 of them are new winners created by the
optimizations; the four naive winners (dedup, srad, bfs, hotspot) stay
winners.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure10
from repro.experiments.report import render_figure


def test_figure10_overall_speedups(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure10(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    winners = {n for n, v in fig.series.items() if v > 1.0}
    assert len(winners) == 9
    unopt = fig.extra_series["mic without optimization"]
    new_winners = {n for n in winners if unopt[n] < 1.0}
    assert len(new_winners) == 5
    assert {"dedup", "srad", "bfs", "hotspot"} <= winners
