"""Shared-memory lowering: malloc sites to arena allocation (Section V).

The runtime half of the shared-memory mechanism lives in
:mod:`repro.runtime.arena` / :mod:`repro.runtime.smartptr`; this pass is
the compiler half: it rewrites shared allocation sites so objects are
"created continuously in these preallocated buffers":

* ``Offload_shared_malloc(size)`` and ``malloc(size)`` calls become
  ``arena_alloc(size)``;
* ``Offload_shared_free(p)`` / ``free(p)`` become ``arena_free(p)``
  (arena frees are no-ops until the whole arena is released, matching the
  paper's allocation-only workloads);
* the pass reports the number of static allocation sites rewritten —
  Table III's "Static" column.
"""

from __future__ import annotations

from repro.minic import ast_nodes as ast
from repro.minic.visitor import NodeTransformer
from repro.transforms.base import TransformReport

_ALLOC_NAMES = {"malloc", "Offload_shared_malloc", "shared_malloc"}
_FREE_NAMES = {"free", "Offload_shared_free", "shared_free"}


class _MallocRewriter(NodeTransformer):
    def __init__(self) -> None:
        self.alloc_sites = 0
        self.free_sites = 0

    def visit_Call(self, node: ast.Call) -> ast.Node:
        self.generic_visit(node)
        if node.func in _ALLOC_NAMES:
            self.alloc_sites += 1
            return ast.Call("arena_alloc", node.args)
        if node.func in _FREE_NAMES:
            self.free_sites += 1
            return ast.Call("arena_free", node.args)
        return node


def lower_shared_memory(program: ast.Program) -> TransformReport:
    """Rewrite allocation sites to arena calls, in place."""
    report = TransformReport(name="shared-memory", applied=False)
    rewriter = _MallocRewriter()
    rewriter.visit(program)
    if rewriter.alloc_sites == 0:
        report.reason = "no shared allocation sites in the program"
        return report
    report.applied = True
    report.note(
        f"rewrote {rewriter.alloc_sites} allocation site(s) and "
        f"{rewriter.free_sites} free site(s) to arena calls"
    )
    return report
