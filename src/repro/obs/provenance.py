"""Run provenance: who produced this artifact, from what tree, how.

Bench reports and fault-campaign summaries are compared across PRs;
attributing each artifact to a git SHA, the input seed, and the
interpreter engine makes those diffs meaningful.  Provenance lookup is
best-effort: outside a git checkout (an installed wheel, a bare CI
container) the SHA degrades to the ``REPRO_GIT_SHA`` environment
variable or ``"unknown"`` rather than failing.
"""

from __future__ import annotations

import os
import subprocess
from typing import Optional


def git_sha() -> str:
    """The current checkout's commit SHA, or a best-effort fallback."""
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def build_provenance(
    seed: Optional[object] = None,
    engine: Optional[str] = None,
    **extra,
) -> dict:
    """The standard provenance block artifacts embed."""
    info = {"git_sha": git_sha(), "seed": seed, "engine": engine}
    info.update(extra)
    return info
