"""Thread reuse: persistent-kernel marking (Section III-C).

"Since the overhead of launching kernels may be high, we propose to reuse
MIC threads in order to avoid repeated launches of the same kernels."
The streaming transform already marks its generated kernels; this
standalone pass applies the same optimization to any offload that sits
inside a host loop and would otherwise be relaunched every iteration.
The executor lowers the marker to the COI persistent-kernel protocol:
first launch pays the full kernel-launch overhead K, every later
activation pays only a signal.
"""

from __future__ import annotations

from typing import List

from repro.minic import ast_nodes as ast
from repro.minic.visitor import get_pragma, walk
from repro.transforms.base import TransformReport


def apply_thread_reuse(program: ast.Program) -> TransformReport:
    """Mark repeatedly-launched offloads as persistent, in place."""
    report = TransformReport(name="thread-reuse", applied=False)
    marked = 0
    for host_loop in walk(program):
        if not isinstance(host_loop, (ast.For, ast.While)):
            continue
        if isinstance(host_loop, ast.For) and get_pragma(
            host_loop, ast.OffloadPragma
        ):
            continue  # the loop itself is offloaded; nothing repeats on host
        for node in walk(host_loop.body):
            pragma = None
            if isinstance(node, ast.For):
                pragma = get_pragma(node, ast.OffloadPragma)
            elif isinstance(node, ast.OffloadBlock):
                pragma = node.pragma
            if pragma is not None and not pragma.persistent:
                pragma.persistent = True
                marked += 1
    if marked:
        report.applied = True
        report.note(f"marked {marked} offload(s) persistent")
    else:
        report.reason = "no offloads inside host loops"
    return report
