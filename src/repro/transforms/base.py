"""Shared infrastructure for the COMP transformations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.minic import ast_nodes as ast
from repro.minic.visitor import walk

_counter = itertools.count()


def fresh_name(base: str, program: Optional[ast.Program] = None) -> str:
    """Generate an identifier that does not collide with *program*'s names.

    Generated names use a double-underscore prefix, which MiniC benchmark
    sources never use, plus a global counter as a belt-and-braces fallback.
    """
    existing = set()
    if program is not None:
        existing = {
            n.name for n in walk(program) if isinstance(n, (ast.Ident, ast.VarDecl))
        }
    candidate = f"__{base}"
    if candidate not in existing:
        return candidate
    while True:
        candidate = f"__{base}_{next(_counter)}"
        if candidate not in existing:
            return candidate


@dataclass
class TransformReport:
    """What a transformation did — surfaced in Table II and the examples."""

    name: str
    applied: bool
    reason: str = ""
    details: List[str] = field(default_factory=list)
    #: Machine-readable artifacts the transform produced, e.g. the
    #: streaming transform's resumable block schedules
    #: (:class:`~repro.transforms.streaming.StreamSchedule`).
    schedules: List[object] = field(default_factory=list)

    def note(self, message: str) -> None:
        """Append a human-readable detail line."""
        self.details.append(message)

    def __bool__(self) -> bool:
        return self.applied


def replace_statement(
    container: ast.Node, old: ast.Stmt, new: List[ast.Stmt]
) -> bool:
    """Replace *old* (by identity) with *new* statements in the nearest
    statement list under *container*.  Returns True when found."""
    for node in walk(container):
        for fname, value in node.fields():
            if isinstance(value, list) and any(item is old for item in value):
                result: List[ast.Stmt] = []
                for item in value:
                    if item is old:
                        result.extend(new)
                    else:
                        result.append(item)
                setattr(node, fname, result)
                return True
            if value is old and fname == "body":
                setattr(node, fname, ast.Block(list(new)))
                return True
    return False
