"""Additional executor coverage: device regions, structs, stats, errors."""

import numpy as np
import pytest

from repro.errors import ExecutionError, RuntimeFault
from repro.runtime.executor import Machine, run_program
from repro.transforms.aos_to_soa import convert_aos_to_soa, soa_arrays
from repro.minic.parser import parse


class TestOffloadBlockRegions:
    def test_while_loop_inside_device_region(self):
        src = """
        void main() {
        #pragma offload target(mic:0) inout(A : length(4)) in(limit)
            {
                int rounds = 0;
                while (A[0] < limit) {
                    A[0] = A[0] + 1.0;
                    rounds = rounds + 1;
                }
                A[1] = (float)rounds;
            }
        }
        """
        result = run_program(
            src,
            arrays={"A": np.zeros(4, dtype=np.float32)},
            scalars={"limit": 5.0},
        )
        assert result.array("A")[0] == 5.0
        assert result.array("A")[1] == 5.0

    def test_serial_device_code_is_slow(self):
        """Serial statements inside a region run at MIC serial speed —
        the cost offload merging accepts (Section III-C)."""
        serial_src = """
        void main() {
        #pragma offload target(mic:0) inout(A : length(1)) in(n)
            {
                for (int i = 0; i < n; i++) { A[0] = A[0] + sqrt(2.0); }
            }
        }
        """
        parallel_src = """
        void main() {
        #pragma offload target(mic:0) inout(A : length(n)) in(n)
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { A[i] = A[i] + sqrt(2.0); }
        }
        """
        n = 2048
        serial = run_program(
            serial_src, arrays={"A": np.zeros(1, dtype=np.float32)},
            scalars={"n": n}, machine=Machine(),
        ).stats
        parallel = run_program(
            parallel_src, arrays={"A": np.zeros(n, dtype=np.float32)},
            scalars={"n": n}, machine=Machine(),
        ).stats
        assert serial.device_compute_time > 20 * parallel.device_compute_time

    def test_nested_parallel_loops_counted_once(self):
        """An omp loop inside another parallel loop folds into it."""
        src = """
        void main() {
        #pragma offload target(mic:0) in(n) out(A : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) {
        #pragma omp parallel for
                for (int j = 0; j < 4; j++) {
                    A[i] = A[i] + 1.0;
                }
            }
        }
        """
        result = run_program(
            src, arrays={"A": np.zeros(32, dtype=np.float32)},
            scalars={"n": 32},
        )
        assert np.all(result.array("A") == 4.0)


class TestStructuredArrays:
    AOS_SRC = """
    void main() {
    #pragma offload target(mic:0) in(P : length(n)) in(n) out(D : length(n))
    #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            D[i] = P[i].x + P[i].y;
        }
    }
    """

    def make_points(self, n):
        pts = np.zeros(n, dtype=[("x", np.float32), ("y", np.float32)])
        pts["x"] = np.arange(n)
        pts["y"] = 1.0
        return pts

    def test_aos_array_offloads(self):
        n = 16
        result = run_program(
            self.AOS_SRC,
            arrays={"P": self.make_points(n), "D": np.zeros(n, dtype=np.float32)},
            scalars={"n": n},
        )
        assert np.array_equal(result.array("D"), np.arange(n) + 1.0)

    def test_soa_conversion_end_to_end(self):
        n = 16
        pts = self.make_points(n)
        prog = parse(self.AOS_SRC)
        report = convert_aos_to_soa(prog)
        assert report.applied
        arrays = soa_arrays(pts, "P")
        arrays["D"] = np.zeros(n, dtype=np.float32)
        result = run_program(prog, arrays=arrays, scalars={"n": n})
        assert np.array_equal(result.array("D"), np.arange(n) + 1.0)

    def test_aos_transfer_moves_whole_structs(self):
        n = 64
        machine = Machine()
        run_program(
            self.AOS_SRC,
            arrays={"P": self.make_points(n), "D": np.zeros(n, dtype=np.float32)},
            scalars={"n": n},
            machine=machine,
        )
        # 8 bytes per struct element cross the bus.
        assert machine.coi.stats.bytes_to_device >= n * 8


class TestStatsFields:
    SRC = """
    void main() {
    #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
    #pragma omp parallel for
        for (int i = 0; i < n; i++) { B[i] = A[i] * 2.0; }
    }
    """

    def run(self, machine=None):
        n = 128
        return run_program(
            self.SRC,
            arrays={
                "A": np.ones(n, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            },
            scalars={"n": n},
            machine=machine or Machine(),
        ).stats

    def test_device_compute_below_busy(self):
        stats = self.run()
        assert 0 < stats.device_compute_time < stats.device_busy_time

    def test_transfer_time_property(self):
        stats = self.run()
        assert stats.transfer_time == (
            stats.transfer_to_device_time + stats.transfer_from_device_time
        )

    def test_offload_count(self):
        assert self.run().offload_count == 1

    def test_total_covers_all_phases(self):
        stats = self.run()
        assert stats.total_time >= stats.device_busy_time


class TestErrors:
    def test_subscript_of_scalar(self):
        with pytest.raises(ExecutionError):
            run_program("void main() { x = 1; y = x[0]; }")

    def test_member_of_plain_array(self):
        with pytest.raises(ExecutionError):
            run_program(
                "void main() { y = A[0].x; }",
                arrays={"A": np.zeros(4, dtype=np.float32)},
            )

    def test_clause_names_unknown_variable(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(ghost : length(4))
        #pragma omp parallel for
            for (int i = 0; i < 4; i++) { x = 1; }
        }
        """
        with pytest.raises(RuntimeFault):
            run_program(src)

    def test_clause_section_out_of_range(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A[2:8] : into(A1)) in(n)
        #pragma omp parallel for
            for (int i = 0; i < 1; i++) { x = A1[0]; }
        }
        """
        with pytest.raises(RuntimeFault):
            run_program(
                src, arrays={"A": np.zeros(4, dtype=np.float32)},
                scalars={"n": 4},
            )

    def test_math_domain_error(self):
        with pytest.raises(ExecutionError):
            run_program("void main() { x = log(-1.0); }")

    def test_wrong_arity_call(self):
        src = "float f(float a, float b) { return a; }\nvoid main() { x = f(1.0); }"
        with pytest.raises(ExecutionError):
            run_program(src)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = sqrt(A[i]); }
        }
        """
        n = 256
        times = []
        for _ in range(2):
            result = run_program(
                src,
                arrays={
                    "A": np.ones(n, dtype=np.float32),
                    "B": np.zeros(n, dtype=np.float32),
                },
                scalars={"n": n},
                machine=Machine(scale=100.0),
            )
            times.append(result.stats.total_time)
        assert times[0] == times[1]
