"""JSON-lines TCP front end for the campaign service.

The wire protocol is a single JSON request line followed by a stream of
JSON event lines — no framing, no dependencies, easy to drive from
``nc`` or a five-line client:

* ``{"op": "submit", "spec": {...JobSpec...}}`` — admit one job and
  stream its lifecycle events (``queued`` → ``started``/``cached`` →
  ``result`` → ``done``/``failed``) back as they happen, so results
  reach the client incrementally rather than at the end.  Backpressure
  is a normal response, not a dropped connection: a full queue answers
  ``{"event": "rejected", "retry_after": ...}``.
* ``{"op": "stats"}`` — one line of fleet-wide service telemetry
  (queue depth, store hit rate, worker warm-cache state, metrics).
* ``{"op": "ping"}`` — liveness probe.
* ``{"op": "shutdown"}`` — drain and stop the server.

Every response line carries an ``"event"`` field; protocol errors come
back as ``{"event": "error", "error": ...}`` instead of killing the
connection silently.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import List, Optional

from repro.service.jobs import JobSpec
from repro.service.queue import AdmissionRejected
from repro.service.service import CampaignService


def _line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


class CampaignServer:
    """Serves one :class:`CampaignService` over JSON-lines TCP."""

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "CampaignServer":
        """Bind and start accepting; resolves ``port=0`` to the real port."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Block until a client sends ``{"op": "shutdown"}``."""
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self._shutdown.set()

    # -- request handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await reader.readline()
            if not raw:
                return
            try:
                request = json.loads(raw)
            except json.JSONDecodeError as exc:
                writer.write(_line({"event": "error", "error": f"bad JSON: {exc}"}))
                return
            op = request.get("op")
            if op == "ping":
                writer.write(_line({"event": "pong"}))
            elif op == "stats":
                await self._handle_stats(writer)
            elif op == "submit":
                await self._handle_submit(request, writer)
            elif op == "shutdown":
                writer.write(_line({"event": "bye"}))
                self._shutdown.set()
            else:
                writer.write(_line({
                    "event": "error",
                    "error": f"unknown op {op!r}: valid ops are "
                             "submit, stats, ping, shutdown",
                }))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_stats(self, writer: asyncio.StreamWriter) -> None:
        snapshot = self.service.snapshot()
        snapshot["warm"] = await self.service.pool.warm_stats()
        writer.write(_line({"event": "stats", **snapshot}))

    async def _handle_submit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        try:
            spec = JobSpec.from_dict(request.get("spec") or {})
            job = self.service.submit(spec)
        except AdmissionRejected as exc:
            writer.write(_line({
                "event": "rejected",
                "depth": exc.depth,
                "retry_after": exc.retry_after,
            }))
            return
        except (ValueError, TypeError) as exc:
            writer.write(_line({"event": "error", "error": str(exc)}))
            return
        async for event in self.service.stream(job):
            writer.write(_line(event))
            await writer.drain()


async def serve(
    host: str = "127.0.0.1",
    port: int = 8753,
    workers: int = 0,
    max_depth: int = 64,
    high_water: Optional[int] = None,
    ready=None,
) -> None:
    """Run a campaign service on TCP until a shutdown request.

    *ready* (optional callable) receives the bound port once the server
    is accepting — the CLI uses it to print the endpoint, tests use it
    to learn an ephemeral port.
    """
    service = CampaignService(
        workers=workers, max_depth=max_depth, high_water=high_water
    )
    server = CampaignServer(service, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server.port)
    await server.serve_until_shutdown()


# -- synchronous client (CLI / tests) -----------------------------------------


def request(
    host: str, port: int, payload: dict, timeout: float = 60.0
) -> List[dict]:
    """Send one request line; return every response event line."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(_line(payload))
        events: List[dict] = []
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        return events


def submit(
    host: str, port: int, spec: JobSpec, timeout: float = 300.0
) -> List[dict]:
    """Submit one job; returns its streamed event lines."""
    return request(
        host, port, {"op": "submit", "spec": spec.as_dict()}, timeout=timeout
    )
