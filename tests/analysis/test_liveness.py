"""Tests for loop liveness analysis."""

from repro.analysis.liveness import analyze_loop_liveness
from repro.minic.parser import parse


def loop_from(source):
    prog = parse(source)
    return prog.function("main").body.stmts[-1]


BLACKSCHOLES = """
void main() {
#pragma omp parallel for
    for (int i = 0; i < numOptions; i++) {
        prices[i] = BlkSchls(sptprice[i], strike[i], rate[i]);
    }
}
"""

SRAD = """
void main() {
#pragma omp parallel for
    for (int k = 0; k < size; k++) {
        float Jc = J[k];
        dN[k] = J[iN[k]] - Jc;
        dS[k] = J[iS[k]] - Jc;
    }
}
"""


class TestLiveIn:
    def test_read_arrays_are_live_in(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert {"sptprice", "strike", "rate"} <= info.live_in

    def test_bound_scalar_is_live_in(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "numOptions" in info.live_in

    def test_written_array_not_live_in(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "prices" not in info.live_in

    def test_induction_variable_hidden(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "i" not in info.live_in
        assert "i" not in info.defined

    def test_builtin_call_not_live_in(self):
        loop = loop_from(
            "void main() { for (int i = 0; i < n; i++) { B[i] = exp(A[i]); } }"
        )
        info = analyze_loop_liveness(loop)
        assert "exp" not in info.live_in
        # user functions are also calls, not data
        assert "BlkSchls" not in analyze_loop_liveness(loop_from(BLACKSCHOLES)).live_in


class TestDefined:
    def test_written_array_is_defined(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "prices" in info.defined

    def test_local_temp_is_private(self):
        info = analyze_loop_liveness(loop_from(SRAD))
        assert "Jc" in info.private
        assert "Jc" not in info.live_in
        assert "Jc" not in info.defined

    def test_scalar_written_before_read_not_live_in(self):
        loop = loop_from(
            "void main() { for (int i = 0; i < n; i++) { t = A[i]; B[i] = t * t; } }"
        )
        info = analyze_loop_liveness(loop)
        assert "t" not in info.live_in
        assert "t" in info.defined

    def test_scalar_read_before_write_is_live_in(self):
        loop = loop_from(
            "void main() { for (int i = 0; i < n; i++) { B[i] = t; t = A[i]; } }"
        )
        info = analyze_loop_liveness(loop)
        assert "t" in info.live_in


class TestDirections:
    def test_in_only(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "sptprice" in info.in_only

    def test_out_only(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "prices" in info.out_only

    def test_inout(self):
        loop = loop_from(
            "void main() { for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; } }"
        )
        info = analyze_loop_liveness(loop)
        assert "A" in info.inout

    def test_compound_assign_is_inout(self):
        loop = loop_from(
            "void main() { for (int i = 0; i < n; i++) { A[i] += 1.0; } }"
        )
        info = analyze_loop_liveness(loop)
        assert "A" in info.inout


class TestArraysVsScalars:
    def test_array_set(self):
        info = analyze_loop_liveness(loop_from(SRAD))
        assert {"J", "iN", "iS", "dN", "dS"} <= info.arrays

    def test_scalar_set(self):
        info = analyze_loop_liveness(loop_from(BLACKSCHOLES))
        assert "numOptions" in info.scalars
        assert "sptprice" not in info.scalars

    def test_omp_private_clause_respected(self):
        loop = loop_from(
            "void main() {\n"
            "#pragma omp parallel for private(tmp)\n"
            "for (int i = 0; i < n; i++) { tmp = A[i]; B[i] = tmp; } }"
        )
        info = analyze_loop_liveness(loop)
        assert "tmp" in info.private
        assert "tmp" not in info.defined
