"""Tests for the asyncio campaign service orchestrator."""

import asyncio

import pytest

from repro.service.jobs import JobSpec
from repro.service.queue import AdmissionRejected
from repro.service.service import CampaignService

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def run_spec(size=16, **overrides):
    fields = dict(
        kind="run",
        source=SOURCE,
        arrays=(f"A={size}:float:arange", f"B={size}:float:zeros"),
        scalars=(f"n={size}",),
        seed=0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def run_service(coro_fn, **service_kwargs):
    async def scenario():
        service = CampaignService(**service_kwargs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.close()

    return asyncio.run(scenario())


class TestLifecycle:
    def test_job_event_sequence(self):
        async def scenario(service):
            job = service.submit(run_spec())
            events = [e["event"] async for e in service.stream(job)]
            return events, job

        events, job = run_service(scenario)
        assert events == ["queued", "started", "result", "done"]
        assert job.state == "done"
        assert job.result["ok"]
        assert not job.cached

    def test_result_streams_incrementally(self):
        async def scenario(service):
            job = service.submit(run_spec())
            seen = []
            async for event in service.stream(job):
                seen.append(event)
                if event["event"] == "result":
                    # The full result payload arrives before the
                    # terminal event, not after the fact.
                    assert event["result"]["outputs"]
            return seen

        events = run_service(scenario)
        assert events[-1]["event"] == "done"

    def test_invalid_spec_raises_before_admission(self):
        async def scenario(service):
            with pytest.raises(ValueError, match="source"):
                service.submit(JobSpec(kind="run", source=None))
            return service.queue.accepted

        assert run_service(scenario) == 0


class TestSharedStore:
    def test_identical_submissions_served_from_cache(self):
        async def scenario(service):
            first = service.submit(run_spec())
            result = await service.result(first)
            second = service.submit(run_spec())
            cached = await service.result(second)
            return first, second, result, cached

        first, second, result, cached = run_service(scenario)
        assert not first.cached
        assert second.cached
        assert cached == result
        assert second.state == "done"

    def test_cache_is_keyed_on_provenance(self):
        async def scenario(service):
            a = service.submit(run_spec(seed=0))
            b = service.submit(run_spec(seed=1))
            ra = await service.result(a)
            rb = await service.result(b)
            return ra, rb, b.cached

        ra, rb, b_cached = run_service(scenario)
        assert not b_cached
        assert ra["outputs"] == rb["outputs"]  # arange inputs: same data
        assert ra["key_id"] != rb["key_id"]

    def test_concurrent_identical_submissions_coalesce(self):
        async def scenario(service):
            jobs = [service.submit(run_spec()) for _ in range(4)]
            results = [await service.result(job) for job in jobs]
            assert all(r == results[0] for r in results)
            hits, misses, size = service.store.stats()
            return size, sum(job.cached for job in jobs)

        size, cached_count = run_service(scenario, workers=2)
        assert size == 1
        assert cached_count == 3

    def test_scheduling_hints_share_cache(self):
        async def scenario(service):
            a = service.submit(run_spec(tenant="alice", priority=0))
            await service.result(a)
            b = service.submit(run_spec(tenant="bob", priority=2))
            await service.result(b)
            return b.cached

        assert run_service(scenario)


class TestBackpressure:
    def test_rejects_with_retry_after_past_high_water(self):
        # Submissions are synchronous (no awaits), so the dispatcher
        # can't drain between them: exactly high_water jobs are
        # admitted, then backpressure starts.
        async def scenario(service):
            jobs = []
            with pytest.raises(AdmissionRejected) as exc:
                for i in range(100):
                    jobs.append(service.submit(run_spec(seed=i)))
            for job in jobs:
                await service.result(job)
            return len(jobs), exc.value.retry_after

        admitted, retry_after = run_service(
            scenario, max_depth=4, high_water=2
        )
        assert admitted == 2
        assert retry_after > 0

    def test_rejected_jobs_do_not_leak(self):
        async def scenario(service):
            kept = service.submit(run_spec(seed=0))
            with pytest.raises(AdmissionRejected):
                service.submit(run_spec(seed=1))
            await service.result(kept)
            await service.drain()
            return service.snapshot()

        snapshot = run_service(scenario, max_depth=2, high_water=1)
        assert snapshot["queue_rejected"] == 1
        assert snapshot["queue_depth"] == 0
        # The rejected job must not linger in the service's job table.
        assert snapshot["jobs"] == 1


class TestTelemetry:
    def test_snapshot_aggregates_fleet_metrics(self):
        async def scenario(service):
            job = service.submit(run_spec())
            await service.result(job)
            again = service.submit(run_spec())
            await service.result(again)
            return service.snapshot()

        snapshot = run_service(scenario)
        counters = snapshot["metrics"]["counters"]
        assert counters["service.jobs.submitted"] == 2
        assert counters["service.jobs.completed"] == 2
        assert counters["service.jobs.cached"] == 1
        assert counters["service.sim_seconds"] > 0
        assert snapshot["store"]["size"] == 1
        latency = snapshot["metrics"]["histograms"].get(
            "service.queue.wall_seconds"
        )
        assert latency is not None and latency["count"] >= 1

    def test_faults_job_rolls_up_fault_totals(self):
        async def scenario(service):
            job = service.submit(JobSpec(
                kind="faults", workload="hotspot", scenario=0, seed=5,
                rates=(("kernel", 0.2),),
            ))
            result = await service.result(job)
            return result, service.snapshot()

        result, snapshot = run_service(scenario)
        counters = snapshot["metrics"]["counters"]
        assert counters["service.faults.injected"] == (
            result["fault_stats"]["total_injected"]
        )

    def test_failed_job_counted_and_raises(self):
        async def scenario(service):
            job = service.submit(JobSpec(
                kind="run", source="void main() { this is not minic }",
            ))
            with pytest.raises(RuntimeError):
                await service.result(job)
            return job.state, service.snapshot()

        state, snapshot = run_service(scenario)
        assert state == "failed"
        assert snapshot["metrics"]["counters"]["service.jobs.failed"] == 1


# -- supervision / deadline / drain doubles -----------------------------------


class GatedPool:
    """Pool double whose jobs block until the test releases them."""

    workers = 0
    inline = True
    generations = 0

    def __init__(self):
        self.release = asyncio.Event()
        self.calls = 0

    async def run(self, payload):
        self.calls += 1
        await self.release.wait()
        return {"ok": True, "sim_time": 0.0}

    def restart(self):
        pass

    def shutdown(self, wait=True):
        pass

    async def warm_stats(self):
        return None


class ScriptedCrashPool(GatedPool):
    """Pool double that raises BrokenProcessPool for selected payloads."""

    def __init__(self, crashes=0, poison_seed=None):
        super().__init__()
        self.release.set()
        self.crashes = crashes
        self.poison_seed = poison_seed

    async def run(self, payload):
        from concurrent.futures.process import BrokenProcessPool

        self.calls += 1
        if self.poison_seed is not None and payload.get("seed") == self.poison_seed:
            raise BrokenProcessPool("poison payload killed the worker")
        if self.crashes > 0:
            self.crashes -= 1
            raise BrokenProcessPool("worker died")
        return {"ok": True, "sim_time": 0.0}


class TestDeadlines:
    def test_queued_past_deadline_times_out_without_dispatch(self):
        from repro.service.service import JobTimeout

        async def scenario(service):
            pool = service.pool
            blocker = service.submit(run_spec(seed=1))
            late = service.submit(run_spec(seed=2, deadline_seconds=0.01))
            await asyncio.sleep(0.05)
            pool.release.set()
            events = [e["event"] async for e in service.stream(late)]
            with pytest.raises(JobTimeout):
                await service.result(late)
            await service.result(blocker)
            return events, late, pool.calls

        events, late, calls = run_service(scenario, pool=GatedPool())
        assert events == ["queued", "started", "timeout"]
        assert late.state == "timeout"
        assert "deadline" in late.error
        assert calls == 1  # the expired job never touched a worker

    def test_running_past_deadline_times_out_and_frees_slot(self):
        from repro.service.service import JobTimeout

        async def scenario(service):
            stuck = service.submit(run_spec(seed=1, deadline_seconds=0.05))
            events = [e["event"] async for e in service.stream(stuck)]
            with pytest.raises(JobTimeout):
                await service.result(stuck)
            # The slot was released: a later job still executes.
            service.pool.release.set()
            after = service.submit(run_spec(seed=2))
            result = await service.result(after)
            return events, result, service.snapshot()

        events, result, snapshot = run_service(scenario, pool=GatedPool())
        assert events == ["queued", "started", "timeout"]
        assert result["ok"]
        counters = snapshot["metrics"]["counters"]
        assert counters["service.jobs.timeout"] == 1

    def test_deadline_is_not_provenance(self):
        a = run_spec(seed=7)
        b = run_spec(seed=7, deadline_seconds=2.0)
        assert a.key() == b.key()

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_seconds"):
            run_spec(deadline_seconds=0.0).validate()


class TestSupervisionIntegration:
    def test_worker_crash_recovered_transparently(self):
        async def scenario(service):
            job = service.submit(run_spec())
            result = await service.result(job)
            return result, service.snapshot()

        result, snapshot = run_service(scenario, pool=ScriptedCrashPool(crashes=1))
        assert result["ok"]
        sup = snapshot["supervisor"]
        assert sup["worker_failures"] == 1
        assert sup["restarts"] == 1
        assert sup["redispatches"] == 1
        assert sup["quarantined"] == 0

    def test_poison_job_quarantined_service_stays_up(self):
        async def scenario(service):
            poison = service.submit(run_spec(seed=666))
            with pytest.raises(RuntimeError, match="poison"):
                await service.result(poison)
            healthy = service.submit(run_spec(seed=1))
            result = await service.result(healthy)
            return poison, result, service.snapshot()

        poison, result, snapshot = run_service(
            scenario, pool=ScriptedCrashPool(poison_seed=666)
        )
        assert poison.state == "failed"
        assert result["ok"]
        sup = snapshot["supervisor"]
        assert sup["quarantined"] == 1
        assert sup["dead_letters"][0]["kills"] == 3
        assert sup["dead_letters"][0]["key_id"] == poison.spec.key_id()


class TestTenantIsolation:
    def test_rate_limit_sheds_hot_tenant_only(self):
        from repro.service.isolation import TenantRateLimited

        async def scenario(service):
            service.submit(run_spec(seed=1, tenant="hot"))
            with pytest.raises(TenantRateLimited):
                service.submit(run_spec(seed=2, tenant="hot"))
            service.submit(run_spec(seed=3, tenant="cool"))
            return service.snapshot()

        snapshot = run_service(scenario, tenant_rate=0.001, tenant_burst=1.0)
        counters = snapshot["metrics"]["counters"]
        assert counters["service.tenant.rate_limited"] == 1
        assert counters["service.jobs.rejected"] == 1

    def test_breaker_opens_for_failing_tenant_only(self):
        from repro.service.isolation import TenantCircuitOpen

        bad_source = "void main() { not minic }"

        async def scenario(service):
            for seed in (1, 2):
                job = service.submit(JobSpec(
                    kind="run", source=bad_source, seed=seed, tenant="bad",
                ))
                with pytest.raises(RuntimeError):
                    await service.result(job)
            with pytest.raises(TenantCircuitOpen):
                service.submit(JobSpec(
                    kind="run", source=bad_source, seed=3, tenant="bad",
                ))
            # The healthy tenant is untouched by the bad one's breaker.
            good = service.submit(run_spec(seed=4, tenant="good"))
            result = await service.result(good)
            return result, service.snapshot()

        result, snapshot = run_service(
            scenario, breaker_failures=2, breaker_cooldown=60.0
        )
        assert result["ok"]
        assert snapshot["tenants"]["bad"]["breaker"] == "open"
        counters = snapshot["metrics"]["counters"]
        assert counters["service.tenant.breaker_trips"] == 1


class TestDrainAndClose:
    def test_close_before_start_fails_queued_jobs(self):
        async def scenario():
            service = CampaignService()
            job = service.submit(run_spec())
            await service.close()
            with pytest.raises(RuntimeError, match="shut down"):
                await service.result(job)
            await service.close()  # idempotent
            return job.state

        assert asyncio.run(scenario()) == "failed"

    def test_double_close_and_start_after_close(self):
        async def scenario():
            service = CampaignService()
            await service.start()
            await service.close()
            await service.close()
            assert service.closed
            with pytest.raises(RuntimeError, match="closed"):
                await service.start()

        asyncio.run(scenario())

    def test_close_with_queued_jobs_fails_them_in_order(self):
        async def scenario(service):
            jobs = [service.submit(run_spec(seed=i)) for i in range(3)]
            await service.close()
            return jobs

        jobs = run_service(scenario)
        assert all(job.state == "failed" for job in jobs)
        assert all("before execution" in job.error for job in jobs)

    def test_draining_service_rejects_with_reason(self):
        from repro.service.service import ServiceDraining

        async def scenario(service):
            service.begin_drain()
            assert service.draining
            with pytest.raises(ServiceDraining) as exc:
                service.submit(run_spec())
            return exc.value

        exc = run_service(scenario)
        assert exc.reason == "draining"
        assert exc.retry_after > 0

    def test_drain_gracefully_finishes_inflight_work(self):
        async def scenario():
            service = CampaignService()
            await service.start()
            jobs = [service.submit(run_spec(seed=i)) for i in range(2)]
            await asyncio.sleep(0)
            drained = await service.drain_gracefully(grace_seconds=30.0)
            return drained, jobs, service

        drained, jobs, service = asyncio.run(scenario())
        assert drained
        assert all(job.state == "done" for job in jobs)
        assert service.closed

    def test_drain_grace_expiry_cancels_stragglers(self):
        async def scenario():
            service = CampaignService(pool=GatedPool())
            await service.start()
            job = service.submit(run_spec(seed=9))
            await asyncio.sleep(0.01)  # dispatched, stuck on the gate
            drained = await service.drain_gracefully(grace_seconds=0.05)
            with pytest.raises(RuntimeError, match="shut down"):
                await service.result(job)
            return drained, job

        drained, job = asyncio.run(scenario())
        assert not drained
        assert job.state == "failed"
