"""Regeneration of every figure in the paper's evaluation.

Each function returns a :class:`FigureData` whose ``series`` maps
benchmark names to the plotted value, in the paper's bar order, plus the
derived summary the caption quotes (averages, counts).  Rendering to text
is :mod:`repro.experiments.report`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.harness import SuiteRunner
from repro.workloads.suite import workload_names

#: Figure 4 benchmarks: "we compare data transfer time and calculation
#: time for benchmarks blackscholes, kmeans, and nn".
FIG4_BENCHMARKS = ["blackscholes", "kmeans", "nn"]

#: Figure 12/13 benchmarks: the five Table II marks data streaming for.
STREAMING_BENCHMARKS = ["blackscholes", "streamcluster", "kmeans", "CG", "nn"]

#: Figure 14 benchmarks: the three Table II marks offload merging for.
MERGING_BENCHMARKS = ["streamcluster", "CG", "cfd"]

#: Figure 15 benchmarks: the two Table II marks regularization for.
REGULARIZATION_BENCHMARKS = ["nn", "srad"]


@dataclass
class FigureData:
    """One reproduced figure."""

    figure_id: str
    title: str
    ylabel: str
    series: Dict[str, float] = field(default_factory=dict)
    extra_series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def average(self) -> float:
        """Mean of the plotted series (the captions quote it)."""
        values = list(self.series.values())
        return sum(values) / len(values) if values else 0.0


def figure1(runner: SuiteRunner, names: Optional[List[str]] = None) -> FigureData:
    """Speedups of naively offloaded benchmarks over the CPU versions."""
    fig = FigureData(
        figure_id="fig1",
        title="Speedups of OpenMP codes on a Xeon Phi coprocessor "
        "compared with a multicore CPU",
        ylabel="speedup over CPU",
    )
    for name in names or workload_names():
        fig.series[name] = runner.run_benchmark(name).unopt_speedup
    losers = sum(1 for v in fig.series.values() if v < 1.0)
    fig.notes.append(
        f"{losers} of {len(fig.series)} benchmarks are slower on the "
        f"coprocessor (paper: 8 of 12)"
    )
    return fig


def figure4(runner: SuiteRunner) -> FigureData:
    """Data transfer time over calculation time on the unoptimized MIC."""
    fig = FigureData(
        figure_id="fig4",
        title="Data transfer overheads",
        ylabel="transfer time / calculation time",
    )
    for name in FIG4_BENCHMARKS:
        stats = runner.run_variant(name, "mic").stats
        calc = stats.device_compute_time
        fig.series[name] = stats.transfer_time / calc if calc else float("inf")
    fig.notes.append(
        "transfer exceeds calculation for all three (the paper's motivation "
        "for data streaming)"
    )
    return fig


def figure10(runner: SuiteRunner, names: Optional[List[str]] = None) -> FigureData:
    """Application speedups over the original parallel CPU implementation."""
    fig = FigureData(
        figure_id="fig10",
        title="Application speedups over the original, parallel CPU "
        "implementation",
        ylabel="speedup over CPU",
    )
    without: Dict[str, float] = {}
    for name in names or workload_names():
        result = runner.run_benchmark(name)
        fig.series[name] = result.opt_speedup
        without[name] = result.unopt_speedup
    fig.extra_series["mic without optimization"] = without
    winners = sum(1 for v in fig.series.values() if v > 1.0)
    fig.notes.append(
        f"{winners} of {len(fig.series)} benchmarks beat the CPU after "
        f"optimization (paper: 9 of 12); max speedup "
        f"{max(fig.series.values()):.2f}x (paper: up to 5.0x)"
    )
    return fig


def figure11(runner: SuiteRunner, names: Optional[List[str]] = None) -> FigureData:
    """Speedups of the optimizations over the unoptimized MIC versions."""
    fig = FigureData(
        figure_id="fig11",
        title="Application speedups achieved by our optimizations over the "
        "MIC versions w/o our optimizations",
        ylabel="speedup over unoptimized MIC",
    )
    for name in names or workload_names():
        fig.series[name] = runner.run_benchmark(name).relative_gain
    improved = sum(1 for v in fig.series.values() if v > 1.005)
    gains = [v for v in fig.series.values() if v > 1.005]
    fig.notes.append(
        f"{improved} of {len(fig.series)} benchmarks improve "
        f"(paper: 9 of 12); range {min(gains):.2f}x-{max(gains):.2f}x "
        f"(paper: 1.16x-52.21x)"
    )
    return fig


def figure12(runner: SuiteRunner) -> FigureData:
    """Performance gains by data streaming alone."""
    fig = FigureData(
        figure_id="fig12",
        title="Performance gains by data streaming",
        ylabel="speedup over unoptimized MIC",
    )
    for name in STREAMING_BENCHMARKS:
        fig.series[name] = runner.isolated_gain(name, "streaming")
    fig.notes.append(f"average {fig.average:.2f}x (paper: 1.45x average)")
    return fig


def figure13(runner: SuiteRunner) -> FigureData:
    """Device memory usage with streaming, relative to the original."""
    fig = FigureData(
        figure_id="fig13",
        title="Memory usage after applying data streaming",
        ylabel="fraction of unoptimized device memory",
    )
    for name in STREAMING_BENCHMARKS:
        base = runner.run_variant(name, "mic").stats.device_peak_bytes
        streamed = runner.run_isolated(name, "streaming").stats.device_peak_bytes
        fig.series[name] = streamed / base if base else 0.0
    fig.notes.append(
        f"average usage {fig.average:.0%} of the original (paper: streaming "
        f"reduces memory usage by more than 80%)"
    )
    return fig


def figure14(runner: SuiteRunner) -> FigureData:
    """Performance gains by offload merging alone."""
    fig = FigureData(
        figure_id="fig14",
        title="Performance gains by offload merging",
        ylabel="speedup over unoptimized MIC",
    )
    for name in MERGING_BENCHMARKS:
        fig.series[name] = runner.isolated_gain(name, "merging")
    fig.notes.append(f"average {fig.average:.2f}x (paper: 27.13x average)")
    return fig


def figure15(runner: SuiteRunner) -> FigureData:
    """Performance gains by regularization alone."""
    fig = FigureData(
        figure_id="fig15",
        title="Performance gains by using regularization",
        ylabel="speedup over unoptimized MIC",
    )
    for name in REGULARIZATION_BENCHMARKS:
        fig.series[name] = runner.isolated_gain(name, "regularization")
    fig.notes.append(f"average {fig.average:.2f}x (paper: 1.25x average)")
    return fig
