"""Trace and metrics exporters.

Three output formats:

* **Chrome trace-event JSON** — loadable in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans become
  complete (``X``) events, instants become ``i`` events, and each track
  (``cpu``, ``mic``, ``dma:h2d`` ...) becomes a named thread so
  transfer/compute overlap is visible as parallel lanes.  Multiple runs
  can be merged into one file by giving each a distinct ``pid``.
* **Per-resource utilization / flamegraph aggregation** — busy fraction
  per track plus collapsed-stack lines (``a;b;c weight``) of the span
  hierarchy, the input format of standard flamegraph tooling.
* **Metrics snapshot JSON** — the registry's flat snapshot with an
  optional provenance block, suitable for regression diffing.

All exporters are pure functions of recorded spans/instants: exporting
never mutates the tracer and is safe to do repeatedly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.intervals import covered_time, merge_intervals
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Instant, Span, Tracer

#: Canonical lane ordering in the trace viewer: host thread first, then
#: the device, then the DMA channels, then anything else alphabetically.
_PREFERRED_TRACKS = ("cpu", "mic", "dma:h2d", "dma:d2h")

_MICROSECONDS = 1e6


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _track_order(tracks: Iterable[str]) -> List[str]:
    tracks = set(tracks)
    ordered = [t for t in _PREFERRED_TRACKS if t in tracks]
    ordered += sorted(tracks - set(ordered))
    return ordered


def chrome_trace_events(
    tracer: Tracer,
    pid: int = 0,
    process_name: str = "repro",
) -> List[dict]:
    """Convert one tracer's recording to Chrome trace events.

    Timestamps convert from simulated seconds to microseconds (the
    trace-event unit).  Returns metadata events first, then payload
    events sorted by timestamp — the order the validator requires.
    """
    spans: List[Span] = list(tracer.spans)
    instants: List[Instant] = list(tracer.instants)
    tracks = _track_order(
        [s.track for s in spans] + [i.track for i in instants]
    )
    tids = {track: tid for tid, track in enumerate(tracks, start=1)}

    events: List[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    payload: List[dict] = []
    for span in spans:
        payload.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tids[span.track],
                "ts": span.start * _MICROSECONDS,
                "dur": span.duration * _MICROSECONDS,
                "name": span.name,
                "cat": span.track,
                "args": {k: _jsonable(v) for k, v in span.attrs.items()},
            }
        )
    for inst in instants:
        payload.append(
            {
                "ph": "i",
                "pid": pid,
                "tid": tids[inst.track],
                "ts": inst.time * _MICROSECONDS,
                "s": "t",
                "name": inst.name,
                "cat": inst.track,
                "args": {k: _jsonable(v) for k, v in inst.attrs.items()},
            }
        )
    return events + sort_trace_events(payload)


def sort_trace_events(events: List[dict]) -> List[dict]:
    """Sort payload events by timestamp (metadata events sort first).

    Use after merging multiple runs' event lists so the combined file
    still satisfies the monotone-timestamp property.
    """
    return sorted(
        events,
        key=lambda e: (e.get("ph") != "M", e.get("ts", 0.0)),
    )


def validate_chrome_trace(events: List[dict]) -> List[str]:
    """Schema-check a trace-event list; returns problems (empty = ok).

    Checks the invariants the CI smoke job enforces: every event has a
    phase and name, timestamps are non-negative and monotone across the
    file, complete (``X``) events carry non-negative durations, and
    duration (``B``/``E``) events balance per thread.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return ["trace is not a list of events"]
    last_ts = None
    begin_stacks: Dict[Tuple[object, object], List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = event.get("ph")
        if not ph:
            problems.append(f"event {i} has no phase ('ph')")
            continue
        if "name" not in event:
            problems.append(f"event {i} ({ph}) has no name")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i} ({event.get('name')}) has no numeric ts")
            continue
        if ts < 0:
            problems.append(f"event {i} ({event.get('name')}) has negative ts")
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"event {i} ({event.get('name')}) breaks ts monotonicity "
                f"({ts} < {last_ts})"
            )
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {i} ({event.get('name')}) has bad duration {dur!r}"
                )
        elif ph == "B":
            key = (event.get("pid"), event.get("tid"))
            begin_stacks.setdefault(key, []).append(str(event.get("name")))
        elif ph == "E":
            key = (event.get("pid"), event.get("tid"))
            stack = begin_stacks.get(key)
            if not stack:
                problems.append(f"event {i}: E with no matching B on {key}")
            else:
                stack.pop()
    for key, stack in begin_stacks.items():
        if stack:
            problems.append(f"unclosed B events on {key}: {stack}")
    return problems


def write_chrome_trace(path: str, events: List[dict]) -> None:
    """Write a trace-event list as a Chrome/Perfetto JSON file."""
    with open(path, "w") as handle:
        json.dump(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            handle,
            indent=1,
        )
        handle.write("\n")


# -- aggregation ------------------------------------------------------------


def utilization(spans: Iterable[Span]) -> dict:
    """Per-track busy time and utilization over the trace's makespan."""
    by_track: Dict[str, List[Tuple[float, float]]] = {}
    makespan = 0.0
    for span in spans:
        by_track.setdefault(span.track, []).append((span.start, span.end))
        makespan = max(makespan, span.end)
    tracks = {}
    for track in _track_order(by_track):
        merged = merge_intervals(sorted(by_track[track]))
        busy = covered_time(merged)
        tracks[track] = {
            "busy": busy,
            "utilization": busy / makespan if makespan else 0.0,
        }
    return {"makespan": makespan, "tracks": tracks}


def fleet_utilization(spans: Iterable[Span]) -> dict:
    """Per-device busy time and utilization for a multi-device trace.

    Groups :func:`utilization` tracks by their ``devK:`` prefix so each
    fleet device's compute and DMA activity rolls up into one entry;
    tracks without a device prefix (host, legacy single-device runs)
    land under ``"host"``.  Busy time per device is the union of its
    tracks' busy intervals, so overlapping compute and DMA is not
    double-counted.
    """
    by_device: Dict[str, List[Tuple[float, float]]] = {}
    makespan = 0.0
    for span in spans:
        device, sep, _ = span.track.partition(":")
        key = device if sep and device.startswith("dev") else "host"
        by_device.setdefault(key, []).append((span.start, span.end))
        makespan = max(makespan, span.end)
    devices = {}
    for device in sorted(by_device):
        busy = covered_time(merge_intervals(sorted(by_device[device])))
        devices[device] = {
            "busy": busy,
            "utilization": busy / makespan if makespan else 0.0,
        }
    return {"makespan": makespan, "devices": devices}


def flamegraph_lines(spans: Iterable[Span]) -> List[str]:
    """Collapsed-stack lines (``root;child weight_us``) of the hierarchy.

    Weights are *self* time — a span's duration minus its children's —
    in integer microseconds, aggregated over identical paths.  Roots
    with different tracks are prefixed by the track name so host phases
    and device/DMA operations stay distinguishable.
    """
    spans = list(spans)
    by_sid = {span.sid: span for span in spans}
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent is not None and span.parent in by_sid:
            child_time[span.parent] = child_time.get(span.parent, 0.0) + span.duration

    weights: Dict[str, int] = {}
    for span in spans:
        parts = [span.name]
        node = span
        while node.parent is not None and node.parent in by_sid:
            node = by_sid[node.parent]
            parts.append(node.name)
        parts.append(node.track)
        path = ";".join(reversed(parts))
        self_us = round(
            max(0.0, span.duration - child_time.get(span.sid, 0.0))
            * _MICROSECONDS
        )
        weights[path] = weights.get(path, 0) + self_us
    return [f"{path} {weight}" for path, weight in sorted(weights.items())]


# -- metrics ---------------------------------------------------------------


def metrics_snapshot(
    metrics: MetricsRegistry, provenance: Optional[dict] = None
) -> dict:
    """The registry snapshot, with an optional provenance block."""
    payload = dict(metrics.snapshot())
    if provenance is not None:
        payload = {"provenance": provenance, **payload}
    return payload


def write_metrics(
    path: str, metrics: MetricsRegistry, provenance: Optional[dict] = None
) -> None:
    """Write the metrics snapshot as JSON."""
    with open(path, "w") as handle:
        json.dump(metrics_snapshot(metrics, provenance), handle, indent=2)
        handle.write("\n")
