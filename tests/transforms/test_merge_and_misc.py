"""Tests for offload merging, AoS-to-SoA, thread reuse, shared-memory
lowering, and the optimization pipeline."""

import numpy as np
import pytest

from repro.minic import ast_nodes as ast
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.visitor import walk
from repro.runtime.executor import Machine, run_program
from repro.transforms.aos_to_soa import convert_aos_to_soa, soa_arrays
from repro.transforms.merge_offload import merge_offloads
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.shared_memory import lower_shared_memory
from repro.transforms.streaming import StreamingOptions
from repro.transforms.thread_reuse import apply_thread_reuse

STREAMCLUSTER_LIKE = """
void main() {
    for (int t = 0; t < iters; t++) {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            B[i] = A[i] * 2.0;
        }
#pragma offload target(mic:0) in(B : length(n)) in(n) out(C : length(n))
#pragma omp parallel for
        for (int j = 0; j < n; j++) {
            C[j] = B[j] + 1.0;
        }
    }
}
"""

AOS_PROGRAM = """
void main() {
#pragma offload target(mic:0) in(P : length(n)) in(n) out(D : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        D[i] = sqrt(P[i].x * P[i].x + P[i].y * P[i].y);
    }
}
"""


def sc_arrays(n):
    return {
        "A": np.arange(n, dtype=np.float32),
        "B": np.zeros(n, dtype=np.float32),
        "C": np.zeros(n, dtype=np.float32),
    }


class TestMergeOffloads:
    def test_correctness(self):
        n, iters = 64, 3
        expected = run_program(
            STREAMCLUSTER_LIKE, arrays=sc_arrays(n),
            scalars={"n": n, "iters": iters},
        )
        prog = parse(STREAMCLUSTER_LIKE)
        report = merge_offloads(prog)
        assert report.applied, report.reason
        result = run_program(
            prog, arrays=sc_arrays(n), scalars={"n": n, "iters": iters}
        )
        assert np.array_equal(result.array("B"), expected.array("B"))
        assert np.array_equal(result.array("C"), expected.array("C"))

    def test_single_kernel_launch(self):
        """Merging turns 2*iters launches into one."""
        n, iters = 64, 10
        plain = run_program(
            STREAMCLUSTER_LIKE, arrays=sc_arrays(n),
            scalars={"n": n, "iters": iters}, machine=Machine(),
        ).stats
        prog = parse(STREAMCLUSTER_LIKE)
        merge_offloads(prog)
        merged = run_program(
            prog, arrays=sc_arrays(n), scalars={"n": n, "iters": iters},
            machine=Machine(),
        ).stats
        assert plain.kernel_launches == 2 * iters
        assert merged.kernel_launches == 1

    def test_merging_reduces_time(self):
        """Figure 14: launch + per-iteration transfer overhead vanishes."""
        n, iters = 256, 20
        plain = run_program(
            STREAMCLUSTER_LIKE, arrays=sc_arrays(n),
            scalars={"n": n, "iters": iters}, machine=Machine(),
        ).stats
        prog = parse(STREAMCLUSTER_LIKE)
        merge_offloads(prog)
        merged = run_program(
            prog, arrays=sc_arrays(n), scalars={"n": n, "iters": iters},
            machine=Machine(),
        ).stats
        assert merged.total_time < plain.total_time / 5

    def test_clause_union(self):
        prog = parse(STREAMCLUSTER_LIKE)
        merge_offloads(prog)
        block = next(n for n in walk(prog) if isinstance(n, ast.OffloadBlock))
        directions = {c.var: c.direction for c in block.pragma.clauses}
        assert directions["A"] == "in"
        # B is produced by loop 1 before loop 2 reads it: a region-local
        # intermediate whose old contents never cross the bus.
        assert directions["B"] == "out"
        assert directions["C"] == "out"
        assert "iters" in directions  # outer-loop bound must reach the device

    def test_inner_pragmas_stripped(self):
        prog = parse(STREAMCLUSTER_LIKE)
        merge_offloads(prog)
        printed = to_source(prog)
        assert printed.count("#pragma offload ") == 1
        assert printed.count("omp parallel for") == 2

    def test_no_parent_loop(self):
        prog = parse(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(n)\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { A[i] = 0.0; } }"
        )
        assert not merge_offloads(prog).applied

    def test_printed_output_reparses(self):
        prog = parse(STREAMCLUSTER_LIKE)
        merge_offloads(prog)
        assert parse(to_source(prog)) == prog


class TestAosToSoa:
    def make_points(self, n):
        pts = np.zeros(n, dtype=[("x", np.float32), ("y", np.float32)])
        pts["x"] = np.arange(n)
        pts["y"] = np.arange(n) * 2.0
        return pts

    def test_rewrites_accesses(self):
        prog = parse(AOS_PROGRAM)
        report = convert_aos_to_soa(prog)
        assert report.applied
        printed = to_source(prog)
        assert "P__x[i]" in printed
        assert "P__y[i]" in printed
        assert "P[i]." not in printed

    def test_splits_clauses(self):
        prog = parse(AOS_PROGRAM)
        convert_aos_to_soa(prog)
        printed = to_source(prog)
        assert "in(P__x : length(n))" in printed
        assert "in(P__y : length(n))" in printed

    def test_correctness_with_soa_arrays(self):
        n = 32
        pts = self.make_points(n)
        expected = run_program(
            AOS_PROGRAM,
            arrays={"P": pts.copy(), "D": np.zeros(n, dtype=np.float32)},
            scalars={"n": n},
        )
        prog = parse(AOS_PROGRAM)
        convert_aos_to_soa(prog)
        arrays = soa_arrays(pts, "P")
        arrays["D"] = np.zeros(n, dtype=np.float32)
        result = run_program(prog, arrays=arrays, scalars={"n": n})
        assert np.allclose(result.array("D"), expected.array("D"))

    def test_soa_arrays_helper(self):
        pts = self.make_points(4)
        split = soa_arrays(pts, "P")
        assert set(split) == {"P__x", "P__y"}
        assert np.array_equal(split["P__x"], [0, 1, 2, 3])

    def test_soa_arrays_rejects_plain(self):
        with pytest.raises(ValueError):
            soa_arrays(np.zeros(4, dtype=np.float32), "A")

    def test_no_aos_patterns(self):
        prog = parse("void main() { A[0] = 1.0; }")
        assert not convert_aos_to_soa(prog).applied

    def test_soa_version_runs_faster(self):
        """AoS field access is irregular (struct-stride); SoA is unit."""
        n = 1 << 12
        pts = self.make_points(n)
        scale = 1000.0
        plain = run_program(
            AOS_PROGRAM,
            arrays={"P": pts.copy(), "D": np.zeros(n, dtype=np.float32)},
            scalars={"n": n},
            machine=Machine(scale=scale),
        ).stats
        prog = parse(AOS_PROGRAM)
        convert_aos_to_soa(prog)
        arrays = soa_arrays(pts, "P")
        arrays["D"] = np.zeros(n, dtype=np.float32)
        soa = run_program(
            prog, arrays=arrays, scalars={"n": n}, machine=Machine(scale=scale)
        ).stats
        assert soa.total_time < plain.total_time


class TestThreadReuse:
    def test_marks_offload_in_loop(self):
        prog = parse(STREAMCLUSTER_LIKE)
        report = apply_thread_reuse(prog)
        assert report.applied
        pragmas = [
            p
            for n in walk(prog)
            if isinstance(n, ast.For)
            for p in n.pragmas
            if isinstance(p, ast.OffloadPragma)
        ]
        assert all(p.persistent for p in pragmas)

    def test_reduces_launches(self):
        n, iters = 64, 10
        prog = parse(STREAMCLUSTER_LIKE)
        apply_thread_reuse(prog)
        stats = run_program(
            prog, arrays=sc_arrays(n), scalars={"n": n, "iters": iters},
            machine=Machine(),
        ).stats
        assert stats.kernel_launches == 2
        assert stats.kernel_signals == 2 * (iters - 1)

    def test_top_level_offload_untouched(self):
        prog = parse(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) in(n)\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { A[i] = 0.0; } }"
        )
        assert not apply_thread_reuse(prog).applied


class TestSharedMemoryLowering:
    def test_rewrites_malloc(self):
        prog = parse(
            "void main() { p = Offload_shared_malloc(1024); q = malloc(64); }"
        )
        report = lower_shared_memory(prog)
        assert report.applied
        printed = to_source(prog)
        assert printed.count("arena_alloc(") == 2
        assert "malloc" not in printed

    def test_rewrites_free(self):
        prog = parse("void main() { p = malloc(8); free(p); }")
        lower_shared_memory(prog)
        assert "arena_free(p)" in to_source(prog)

    def test_counts_static_sites(self):
        prog = parse(
            "void main() { for (int i = 0; i < n; i++) { p = malloc(16); } }"
        )
        report = lower_shared_memory(prog)
        assert "1 allocation site" in report.details[0]

    def test_no_sites(self):
        prog = parse("void main() { x = 1; }")
        assert not lower_shared_memory(prog).applied


class TestPipeline:
    def test_streamcluster_gets_merging(self):
        prog = parse(STREAMCLUSTER_LIKE)
        result = CompOptimizer().optimize(prog)
        assert result.was_applied("offload-merging")

    def test_blackscholes_gets_streaming(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i] * 2.0; }
        }
        """
        prog = parse(src)
        result = CompOptimizer().optimize(prog)
        assert result.was_applied("data-streaming")
        assert not result.was_applied("offload-merging")

    def test_pipeline_output_correct(self):
        n, iters = 48, 4
        expected = run_program(
            STREAMCLUSTER_LIKE, arrays=sc_arrays(n),
            scalars={"n": n, "iters": iters},
        )
        prog = parse(STREAMCLUSTER_LIKE)
        CompOptimizer().optimize(prog)
        result = run_program(
            prog, arrays=sc_arrays(n), scalars={"n": n, "iters": iters}
        )
        assert np.array_equal(result.array("C"), expected.array("C"))

    def test_plan_disables_stages(self):
        prog = parse(STREAMCLUSTER_LIKE)
        plan = OptimizationPlan(merging=False, streaming=False)
        result = CompOptimizer(plan).optimize(prog)
        assert not result.was_applied("offload-merging")
        assert result.report("data-streaming") is None

    def test_srad_like_gets_split_only(self):
        """Table II: srad benefits from regularization alone — the split
        halves share one offload region, so there is no per-loop offload
        left for streaming to rewrite."""
        src = """
        void main() {
        #pragma offload target(mic:0) in(J : length(n)) in(iN : length(n)) in(n) out(dN : length(n)) out(R : length(n))
        #pragma omp parallel for
            for (int k = 0; k < n; k++) {
                dN[k] = J[iN[k]];
                R[k] = dN[k] * 0.25;
            }
        }
        """
        prog = parse(src)
        result = CompOptimizer(
            OptimizationPlan(
                streaming_options=StreamingOptions(num_blocks=4)
            )
        ).optimize(prog)
        assert result.was_applied("regularization:split")
        assert not result.was_applied("data-streaming")

    def test_reordered_indirect_loop_then_streams(self):
        """Regularization as an enabler: after reordering, the gathered
        array is unit-stride and the loop streams (the nn pattern)."""
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(asize)) in(B : length(n)) in(n) out(C : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) {
                C[i] = A[B[i]] * 2.0;
            }
        }
        """
        prog = parse(src)
        result = CompOptimizer(
            OptimizationPlan(streaming_options=StreamingOptions(num_blocks=4))
        ).optimize(prog)
        assert result.was_applied("regularization:reorder")
        assert result.was_applied("data-streaming")
        n, asize = 40, 90
        rng = np.random.default_rng(1)
        arrays = {
            "A": rng.random(asize).astype(np.float32),
            "B": rng.integers(0, asize, n).astype(np.int32),
            "C": np.zeros(n, dtype=np.float32),
        }
        expected = arrays["A"][arrays["B"]] * np.float32(2.0)
        result_run = run_program(
            prog, arrays=arrays, scalars={"n": n, "asize": asize}
        )
        assert np.allclose(result_run.array("C"), expected)
