"""Unit tests for the sweep data structures and one cheap live sweep."""

import pytest

from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    render_sweep,
    sweep_problem_scale,
)


def make_result(gains):
    result = SweepResult("bench", "param")
    for param, gain in gains.items():
        result.points.append(SweepPoint(param, unopt_time=gain, opt_time=1.0))
    return result


class TestSweepResult:
    def test_gains_mapping(self):
        result = make_result({1.0: 2.0, 2.0: 1.5})
        assert result.gains() == {1.0: 2.0, 2.0: 1.5}

    def test_crossover_found(self):
        result = make_result({1.0: 2.0, 2.0: 1.3, 4.0: 1.01})
        assert result.crossover() == 4.0

    def test_no_crossover(self):
        result = make_result({1.0: 2.0, 2.0: 1.5})
        assert result.crossover() is None

    def test_custom_threshold(self):
        result = make_result({1.0: 1.4, 2.0: 1.2})
        assert result.crossover(threshold=1.3) == 2.0

    def test_point_gain(self):
        point = SweepPoint(0.0, unopt_time=3.0, opt_time=1.5)
        assert point.gain == pytest.approx(2.0)

    def test_render(self):
        text = render_sweep(make_result({1.0: 2.0}))
        assert "sweep: bench over param" in text
        assert "gain" in text

    def test_render_reports_crossover(self):
        text = render_sweep(make_result({1.0: 1.01}))
        assert "crossover" in text


class TestLiveSweep:
    def test_problem_scale_sweep_runs(self):
        result = sweep_problem_scale("nn", [0.5, 1.0])
        assert len(result.points) == 2
        assert all(p.unopt_time > 0 and p.opt_time > 0 for p in result.points)
        assert [p.parameter for p in result.points] == [0.5, 1.0]
