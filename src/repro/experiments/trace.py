"""Execution-trace analysis: where did the time go?

Consumes the span stream of one run — either a machine's
:class:`~repro.hardware.event_sim.Timeline` (lifted through
:func:`repro.obs.tracer.spans_from_timeline`), a
:class:`repro.obs.Tracer`, or a plain span iterable — and answers the
questions the paper's evaluation sections ask:

* how much of the makespan is transfer vs. compute vs. idle;
* how much transfer/compute *overlap* the schedule achieved (the quantity
  data streaming exists to create);
* a per-resource utilization summary.

The interval arithmetic lives in :mod:`repro.obs.intervals` (the single
source of truth shared with the exporters); ``_merge`` and ``_intersect``
remain as aliases for callers of the original private helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple, Union

from repro.hardware.event_sim import Timeline
from repro.obs.intervals import covered_time, intersect_total, merge_intervals
from repro.obs.tracer import Span, Tracer, spans_from_timeline

TRANSFER_RESOURCES = ("dma:h2d", "dma:d2h")
DEVICE_RESOURCE = "mic"

# Aliases kept for the original private-helper call sites and their tests.
_merge = merge_intervals
_covered = covered_time
_intersect = intersect_total

TraceSource = Union[Timeline, Tracer, Iterable[Span]]


def _as_spans(source: TraceSource) -> List[Span]:
    """Normalize any trace source to a span list."""
    if isinstance(source, Timeline):
        return spans_from_timeline(source)
    if isinstance(source, Tracer):
        return list(source.spans)
    return list(source)


def _intervals(
    source: TraceSource, resources: Tuple[str, ...]
) -> List[Tuple[float, float]]:
    spans = _as_spans(source)
    ivs = [
        (span.start, span.end)
        for span in spans
        if span.track in resources and span.end > span.start
    ]
    return _merge(sorted(ivs))


@dataclass
class TraceSummary:
    """Aggregated view of one execution's span stream."""

    makespan: float
    transfer_busy: float
    device_busy: float
    overlap: float
    utilization: Dict[str, float] = field(default_factory=dict)

    @property
    def overlap_fraction(self) -> float:
        """Share of the hideable work actually hidden.

        At most ``min(transfer, compute)`` can overlap — the longer side
        always pokes out — so the fraction is overlap over that bound:
        0 for a fully serialized schedule (the unoptimized offload model:
        transfer, then compute), approaching 1 when streaming hides the
        entire shorter side.
        """
        bound = min(self.transfer_busy, self.device_busy)
        if bound <= 0:
            return 0.0
        return self.overlap / bound

    @property
    def idle_time(self) -> float:
        """Makespan not covered by either transfers or device work."""
        return max(0.0, self.makespan - self._any_busy)

    _any_busy: float = 0.0


def summarize(source: TraceSource) -> TraceSummary:
    """Analyze one run's spans into busy/overlap/idle components.

    Accepts a :class:`Timeline` (the untraced path, lifted to spans), a
    :class:`Tracer`, or any span iterable, so traced and untraced runs
    share one analysis.
    """
    spans = _as_spans(source)
    transfer_spans = _intervals(spans, TRANSFER_RESOURCES)
    device_spans = _intervals(spans, (DEVICE_RESOURCE,))
    makespan = max((span.end for span in spans), default=0.0)
    summary = TraceSummary(
        makespan=makespan,
        transfer_busy=_covered(transfer_spans),
        device_busy=_covered(device_spans),
        overlap=_intersect(transfer_spans, device_spans),
    )
    summary._any_busy = _covered(_merge(sorted(transfer_spans + device_spans)))
    by_track: Dict[str, List[Tuple[float, float]]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append((span.start, span.end))
    for track in sorted(by_track):
        busy = _covered(_merge(sorted(by_track[track])))
        summary.utilization[track] = busy / makespan if makespan else 0.0
    return summary


def render_summary(summary: TraceSummary) -> str:
    """One-paragraph text report of a trace summary."""
    lines = [
        f"makespan            {summary.makespan * 1000:10.3f} ms",
        f"transfer busy       {summary.transfer_busy * 1000:10.3f} ms",
        f"device busy         {summary.device_busy * 1000:10.3f} ms",
        f"transfer/compute overlap {summary.overlap * 1000:6.3f} ms "
        f"({summary.overlap_fraction:.0%} of the hideable side hidden)",
        f"idle                {summary.idle_time * 1000:10.3f} ms",
    ]
    for name in sorted(summary.utilization):
        lines.append(
            f"  {name:<16s} {summary.utilization[name]:6.1%} utilized"
        )
    return "\n".join(lines)
