"""Tests for the Section V shared-memory machinery: augmented pointers,
delta table, arena allocator, and the MYO baseline."""

import pytest

from repro.errors import MyoLimitError, PointerTranslationError, RuntimeFault
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine
from repro.runtime.myo import MyoRuntime
from repro.runtime.smartptr import MAX_BUFFERS, NULL, DeltaTable, SharedPtr


class TestSharedPtr:
    def test_fields(self):
        ptr = SharedPtr(addr=0x1000, bid=3)
        assert ptr.addr == 0x1000
        assert ptr.bid == 3

    def test_bid_must_fit_one_byte(self):
        with pytest.raises(PointerTranslationError):
            SharedPtr(addr=1, bid=256)

    def test_null(self):
        assert NULL.is_null()
        assert not SharedPtr(1, 0).is_null()

    def test_pointer_copy_is_plain_assignment(self):
        """Table I: p1 = p2 is identical on CPU and MIC."""
        p2 = SharedPtr(0x2000, 1)
        p1 = p2
        assert p1 == p2


class TestDeltaTable:
    def make_table(self):
        table = DeltaTable()
        table.register(bid=0, cpu_base=0x10000, mic_base=0x500, size=0x1000)
        table.register(bid=1, cpu_base=0x20000, mic_base=0x9000, size=0x1000)
        return table

    def test_translate(self):
        table = self.make_table()
        ptr = SharedPtr(0x10010, 0)
        assert table.translate(ptr) == 0x500 + 0x10

    def test_translate_second_buffer(self):
        table = self.make_table()
        ptr = SharedPtr(0x20004, 1)
        assert table.translate(ptr) == 0x9000 + 4

    def test_translate_unknown_buffer_raises(self):
        with pytest.raises(PointerTranslationError):
            self.make_table().translate(SharedPtr(0x1, 5))

    def test_translate_null_raises(self):
        with pytest.raises(PointerTranslationError):
            self.make_table().translate(NULL)

    def test_linear_translation_matches_bid_translation(self):
        table = self.make_table()
        ptr = SharedPtr(0x20008, 1)
        linear_addr, comparisons = table.translate_linear(ptr)
        assert linear_addr == table.translate(ptr)
        assert comparisons == 2  # walked both buffers

    def test_linear_translation_cost_grows(self):
        table = DeltaTable()
        for bid in range(100):
            table.register(bid, 0x100000 * (bid + 1), 0x10 * bid, 0x1000)
        ptr = SharedPtr(0x100000 * 100 + 4, 99)
        __, comparisons = table.translate_linear(ptr)
        assert comparisons == 100

    def test_take_address_on_cpu(self):
        """Table I: p = &obj on CPU stores the plain address."""
        table = self.make_table()
        ptr = table.take_address(obj_addr=0x10020, obj_bid=0, on_mic=False)
        assert ptr == SharedPtr(0x10020, 0)

    def test_take_address_on_mic_subtracts_delta(self):
        """Table I: p = &obj on MIC stores &obj - delta[bid], so the pointer
        still holds a CPU address."""
        table = self.make_table()
        mic_addr = table.translate(SharedPtr(0x10020, 0))
        ptr = table.take_address(obj_addr=mic_addr, obj_bid=0, on_mic=True)
        assert ptr == SharedPtr(0x10020, 0)

    def test_roundtrip_translate_take_address(self):
        table = self.make_table()
        original = SharedPtr(0x20040, 1)
        device_addr = table.translate(original)
        assert table.take_address(device_addr, 1, on_mic=True) == original


class TestArenaAllocator:
    def test_single_buffer_until_full(self):
        arena = ArenaAllocator(chunk_bytes=1024)
        for _ in range(4):
            arena.allocate(256)
        assert len(arena.buffers) == 1
        arena.allocate(16)
        assert len(arena.buffers) == 2

    def test_buffers_never_move(self):
        """Unlike grow-and-copy, full buffers keep their base addresses."""
        arena = ArenaAllocator(chunk_bytes=128)
        first = arena.allocate(100)
        base_before = arena.buffers[0].cpu_base
        arena.allocate(100)  # spills into a second buffer
        assert arena.buffers[0].cpu_base == base_before
        assert arena.objects[first.ptr.addr] is first

    def test_oversized_allocation_gets_own_buffer(self):
        arena = ArenaAllocator(chunk_bytes=64)
        obj = arena.allocate(1000)
        assert arena.buffers[obj.ptr.bid].size == 1000

    def test_small_structure_uses_one_small_buffer(self):
        """Section V-A condition (1): minimal memory when data is small."""
        arena = ArenaAllocator(chunk_bytes=1 << 20)
        arena.allocate(100)
        assert arena.total_reserved == 1 << 20
        assert len(arena.buffers) == 1

    def test_object_fields(self):
        arena = ArenaAllocator()
        node = arena.allocate(16, value=1.5, next=NULL)
        assert node.fields["value"] == 1.5

    def test_linked_list_traversal_on_host(self):
        arena = ArenaAllocator(chunk_bytes=64)
        head = arena.allocate(16, value=1.0, next=NULL)
        second = arena.allocate(16, value=2.0, next=NULL)
        head.fields["next"] = second.ptr
        total, ptr = 0.0, head.ptr
        while not ptr.is_null():
            obj = arena.deref(ptr)
            total += obj.fields["value"]
            ptr = obj.fields["next"]
        assert total == 3.0

    def test_alloc_count(self):
        arena = ArenaAllocator()
        for _ in range(10):
            arena.allocate(8)
        assert arena.alloc_count == 10

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            ArenaAllocator().allocate(0)

    def test_buffer_limit_enforced(self):
        arena = ArenaAllocator(chunk_bytes=8)
        with pytest.raises(RuntimeFault):
            for _ in range(MAX_BUFFERS + 1):
                arena.allocate(8)


class TestArenaDeviceCopy:
    def test_device_deref_requires_copy(self):
        machine = Machine()
        arena = ArenaAllocator(chunk_bytes=256)
        obj = arena.allocate(16, value=7.0)
        with pytest.raises(PointerTranslationError):
            arena.deref(obj.ptr, on_mic=True)
        arena.copy_to_device(machine.coi)
        assert arena.deref(obj.ptr, on_mic=True).fields["value"] == 7.0

    def test_copy_charges_dma(self):
        machine = Machine()
        arena = ArenaAllocator(chunk_bytes=1 << 20)
        arena.allocate(64)
        arena.copy_to_device(machine.coi)
        assert machine.coi.stats.bytes_to_device == 1 << 20

    def test_copy_used_only_mode(self):
        machine = Machine()
        arena = ArenaAllocator(chunk_bytes=1 << 20)
        arena.allocate(64)
        arena.copy_to_device(machine.coi, copy_full_buffers=False)
        assert machine.coi.stats.bytes_to_device == 64

    def test_device_memory_accounted_and_freed(self):
        machine = Machine()
        arena = ArenaAllocator(chunk_bytes=4096)
        arena.allocate(64)
        arena.copy_to_device(machine.coi)
        assert machine.device_memory.in_use == 4096
        arena.free_on_device(machine.coi)
        assert machine.device_memory.in_use == 0

    def test_traversal_on_device_after_copy(self):
        machine = Machine()
        arena = ArenaAllocator(chunk_bytes=48)
        nodes = [arena.allocate(16, value=float(i), next=NULL) for i in range(10)]
        for a, b in zip(nodes, nodes[1:]):
            a.fields["next"] = b.ptr
        arena.copy_to_device(machine.coi)
        total, ptr = 0.0, nodes[0].ptr
        while not ptr.is_null():
            obj = arena.deref(ptr, on_mic=True)
            total += obj.fields["value"]
            ptr = obj.fields["next"]
        assert total == sum(range(10))


class TestMyoRuntime:
    def make_myo(self, **kwargs):
        machine = Machine()
        return machine, MyoRuntime(machine.coi, **kwargs)

    def test_shared_malloc_returns_distinct_addresses(self):
        __, myo = self.make_myo()
        a = myo.shared_malloc(100)
        b = myo.shared_malloc(100)
        assert a != b

    def test_allocation_limit(self):
        __, myo = self.make_myo(max_allocations=10)
        for _ in range(10):
            myo.shared_malloc(8)
        with pytest.raises(MyoLimitError):
            myo.shared_malloc(8)

    def test_total_size_limit(self):
        __, myo = self.make_myo(max_total_bytes=1000)
        myo.shared_malloc(900)
        with pytest.raises(MyoLimitError):
            myo.shared_malloc(200)

    def test_ferret_allocation_count_fails(self):
        """Table III: ferret's 80,298 runtime allocations exceed MYO."""
        __, myo = self.make_myo()
        with pytest.raises(MyoLimitError):
            for _ in range(80_298):
                myo.shared_malloc(1024)

    def test_freqmine_allocation_count_fits(self):
        """Table III: freqmine's 912 allocations run under MYO."""
        __, myo = self.make_myo()
        for _ in range(912):
            myo.shared_malloc(8192)
        assert myo.stats.allocations == 912

    def test_first_touch_faults(self):
        machine, myo = self.make_myo()
        addr = myo.shared_malloc(100)
        before = machine.clock.now
        myo.device_access(addr, 4)
        assert myo.stats.page_faults == 1
        assert machine.clock.now > before

    def test_repeat_touch_no_fault(self):
        __, myo = self.make_myo()
        addr = myo.shared_malloc(100)
        myo.device_access(addr, 4)
        myo.device_access(addr + 8, 4)
        assert myo.stats.page_faults == 1

    def test_spanning_access_faults_both_pages(self):
        __, myo = self.make_myo()
        addr = myo.shared_malloc(10_000)
        myo.device_access(addr, 8000)
        assert myo.stats.page_faults == 2

    def test_offload_boundary_invalidates(self):
        __, myo = self.make_myo()
        addr = myo.shared_malloc(100)
        myo.device_access(addr, 4)
        myo.offload_boundary()
        myo.device_access(addr, 4)
        assert myo.stats.page_faults == 2

    def test_myo_slower_than_arena_for_bulk_data(self):
        """The core Table III comparison at the runtime level."""
        nbytes = 1 << 20
        machine_m, myo = self.make_myo()
        addr = myo.shared_malloc(nbytes)
        myo.device_access(addr, nbytes)
        myo_time = machine_m.clock.now

        machine_a = Machine()
        arena = ArenaAllocator(chunk_bytes=nbytes)
        arena.allocate(nbytes)
        arena.copy_to_device(machine_a.coi)
        arena_time = machine_a.clock.now
        assert myo_time > 5 * arena_time
