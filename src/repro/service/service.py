"""The campaign service: asyncio job orchestration over warm workers.

:class:`CampaignService` ties the subsystem together:

* submissions pass **admission control** — per-tenant isolation first
  (:mod:`repro.service.isolation`: token-bucket rate limits and circuit
  breakers, so one hot or failing tenant is shed while everyone else
  proceeds), then the bounded priority/FIFO queue
  (:mod:`repro.service.queue`) that rejects with a retry-after hint
  past its high-water mark;
* accepted jobs dispatch to the **persistent worker pool**
  (:mod:`repro.service.pool`) through a **supervisor**
  (:mod:`repro.service.supervisor`) that absorbs worker crashes:
  rebuild with backoff, redispatch interrupted jobs, quarantine poison
  specs into a dead-letter record;
* jobs carry optional wall-clock **deadlines**
  (:attr:`~repro.service.jobs.JobSpec.deadline_seconds`): a job that
  outlives its budget gets a terminal ``timeout`` event and releases
  its execution slot, instead of holding a worker forever;
* results land in the **shared result store**
  (:mod:`repro.service.store`), keyed on the job's provenance tuple, so
  identical submissions — same program, same seed, same knobs — are
  served from cache across clients, and concurrent identical
  submissions coalesce onto one in-flight execution;
* every job **streams events** (queued → started/cached → result →
  done) through its own ``asyncio.Queue``, which the TCP server relays
  line by line, and the service aggregates fleet-wide telemetry
  (queue depth, wall queue latency, job/fault totals, store hit rate,
  supervisor restarts, breaker trips) into one
  :class:`~repro.obs.metrics.MetricsRegistry`.

Shutdown is graceful: :meth:`CampaignService.begin_drain` closes
admission (new submissions get a 503-style
:class:`ServiceDraining` reject with a retry-after hint),
:meth:`drain_gracefully` waits for in-flight jobs up to a grace period
and then cancels stragglers, and :meth:`close` is idempotent and safe
to call before :meth:`start`.

With a *state_dir* the service is also **durable**: accepted jobs are
journaled write-ahead (:mod:`repro.service.journal`), results spill to
checksummed segments (:mod:`repro.service.persist`), and a restart on
the same directory replays the journal — re-admitting every job with
no terminal record (idempotent: provenance keys and the warmed store
make at-least-once journaling exactly-once in effect) and serving
previously computed results from cache instead of recomputing them.
Corrupt or truncated persisted state is dropped and counted
(``dropped_corrupt``), never trusted; the :attr:`recovery` dict and
the ``durability`` block of :meth:`snapshot` report what happened.

Results are pure functions of the spec (see :mod:`repro.service.jobs`),
so nothing here — caching, coalescing, worker count, scheduling order,
supervision restarts, redispatches — can change what a job returns; it
can only change how fast (or whether, for deadlines and breakers) an
answer arrives.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.service.isolation import TenantGate
from repro.service.jobs import Job, JobSpec
from repro.service.journal import JobJournal, replay_journal
from repro.service.persist import PersistentResultStore
from repro.service.pool import WorkerPool
from repro.service.queue import AdmissionQueue, AdmissionRejected
from repro.service.store import ResultStore
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "CampaignService",
    "AdmissionRejected",
    "ServiceDraining",
    "JobTimeout",
]


class ServiceDraining(AdmissionRejected):
    """The service is draining for shutdown; resubmit elsewhere/later."""

    reason = "draining"

    def __init__(self, depth: int, retry_after: float):
        super().__init__(depth, retry_after)
        self.args = (
            f"service is draining; retry after {retry_after:.3f}s",
        )


class JobTimeout(RuntimeError):
    """A job exceeded its ``deadline_seconds`` wall-clock budget."""


class CampaignService:
    """Long-running job service over the simulated offload fleet."""

    def __init__(
        self,
        workers: int = 0,
        max_depth: int = 64,
        high_water: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[ResultStore] = None,
        pool: Optional[WorkerPool] = None,
        pool_cls=None,
        store_max_entries: Optional[int] = None,
        tenant_rate: Optional[float] = None,
        tenant_burst: float = 4.0,
        breaker_failures: Optional[int] = None,
        breaker_cooldown: float = 30.0,
        supervisor: Optional[WorkerSupervisor] = None,
        state_dir: Optional[str] = None,
        sync: str = "batch",
        journal: Optional[JobJournal] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.state_dir = str(state_dir) if state_dir is not None else None
        self.sync = sync
        #: What crash recovery found; reported in the ready banner, the
        #: `stats` op, and `service.durability.*` metric counters.
        self.recovery = {
            "recovered_jobs": 0,
            "recovered_results": 0,
            "dropped_corrupt": 0,
            "journal_records": 0,
            "duplicate_terminals": 0,
        }
        if store is not None:
            self.store = store
        elif self.state_dir is not None:
            self.store = PersistentResultStore(
                os.path.join(self.state_dir, "results"),
                metrics=self.metrics, name="service.store",
                max_entries=store_max_entries, sync=sync,
            )
            recovered, dropped = self.store.load()
            self.recovery["recovered_results"] = recovered
            self.recovery["dropped_corrupt"] += dropped
        else:
            self.store = ResultStore(
                metrics=self.metrics, name="service.store",
                max_entries=store_max_entries,
            )
        #: Journal replay snapshot, captured *before* the journal file
        #: reopens for append so pre-restart state can't mix with
        #: records this generation writes; consumed by start().
        self._replay = None
        if journal is not None:
            self.journal: Optional[JobJournal] = journal
        elif self.state_dir is not None:
            journal_path = os.path.join(self.state_dir, "journal.jsonl")
            self._replay = replay_journal(journal_path)
            self.recovery["journal_records"] = self._replay.records
            self.recovery["dropped_corrupt"] += self._replay.dropped_corrupt
            self.recovery["duplicate_terminals"] = (
                self._replay.duplicate_terminals
            )
            self.journal = JobJournal(
                journal_path, sync=sync, metrics=self.metrics
            )
        else:
            self.journal = None
        self.queue = AdmissionQueue(
            max_depth=max_depth, high_water=high_water, metrics=self.metrics
        )
        self.pool = pool if pool is not None else WorkerPool(workers, pool_cls)
        self.supervisor = supervisor if supervisor is not None else (
            WorkerSupervisor(self.pool, metrics=self.metrics)
        )
        self.gate = TenantGate(
            rate=tenant_rate,
            burst=tenant_burst,
            breaker_failures=breaker_failures,
            breaker_cooldown=breaker_cooldown,
            metrics=self.metrics,
        )
        #: Concurrency gate: at most this many jobs execute at once.
        self.slots = max(1, workers)
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._jobs: Dict[int, Job] = {}
        self._ids = itertools.count(1)
        self._dispatcher: Optional[asyncio.Task] = None
        self._tasks: set = set()
        self._draining = False
        self._closed = False
        #: Wall-clock queue latencies (submit -> start), for the service
        #: benchmark; live telemetry only, never part of job results.
        self.wall_queue_latencies: List[float] = []

    # -- lifecycle ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once admission has closed for shutdown."""
        return self._draining

    @property
    def closed(self) -> bool:
        return self._closed

    async def start(self) -> "CampaignService":
        """Start the dispatcher; idempotent (but final after close)."""
        if self._closed:
            raise RuntimeError("service is closed; build a new one")
        if self._dispatcher is None:
            self._semaphore = asyncio.Semaphore(self.slots)
            self._recover()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    def begin_drain(self) -> None:
        """Close admission: every later submit gets a retry-after reject."""
        if not self._draining:
            self._draining = True
            self.metrics.counter("service.drain.begun").inc()

    async def drain_gracefully(self, grace_seconds: Optional[float] = None) -> bool:
        """Close admission, drain in-flight work, then close the service.

        Waits up to *grace_seconds* (None = forever) for queued and
        running jobs to finish; on expiry the stragglers are cancelled
        (they finish with a shutdown error).  Returns True when every
        job drained within the grace period.
        """
        self.begin_drain()
        drained = True
        if grace_seconds is None:
            await self.drain()
        else:
            try:
                await asyncio.wait_for(self.drain(), grace_seconds)
            except asyncio.TimeoutError:
                drained = False
                for task in list(self._tasks):
                    task.cancel()
        await self.close()
        return drained

    async def close(self) -> None:
        """Stop dispatching, fail queued jobs, shut the pool down.

        Idempotent, and safe to call before :meth:`start` (queued jobs
        are failed with a shutdown error either way).  In-flight job
        tasks are awaited, not abandoned; use :meth:`drain_gracefully`
        for a bounded wait.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for job in self.queue.drain():
            self._finish(job, error="service shut down before execution")
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()
        if isinstance(self.store, PersistentResultStore):
            self.store.close()

    async def drain(self) -> None:
        """Wait until every accepted job has finished."""
        while self.queue.depth or self._tasks:
            pending = set(self._tasks)
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            else:
                await asyncio.sleep(0)

    async def __aenter__(self) -> "CampaignService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- submission ---------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; returns its :class:`Job` handle.

        Raises ``ValueError`` for malformed specs and
        :class:`AdmissionRejected` (with ``retry_after`` and a
        ``reason``) when admission refuses: queue past its high-water
        mark (``backpressure``), the service shutting down
        (``draining``), or the spec's tenant rate-limited / circuit-
        broken (:mod:`repro.service.isolation`).  A spec whose
        provenance key is already in the shared store completes
        immediately from cache without consuming a queue slot.
        """
        spec.validate()
        if self._draining:
            self.metrics.counter("service.jobs.rejected").inc()
            raise ServiceDraining(self.queue.depth, self.queue.retry_after())
        try:
            self.gate.admit(spec.tenant)
        except AdmissionRejected:
            self.metrics.counter("service.jobs.rejected").inc()
            raise
        job = Job(
            id=next(self._ids),
            spec=spec,
            submitted_wall=time.monotonic(),
            events=asyncio.Queue(),
            done=asyncio.get_running_loop().create_future(),
        )
        self._jobs[job.id] = job
        self.metrics.counter("service.jobs.submitted").inc()
        cached = self.store.get(spec.key_sha(), record=True)
        if cached is not None:
            self._journal_accepted(job)
            self._emit(job, "cached", key=spec.key_id())
            self.metrics.counter("service.jobs.cached").inc()
            job.cached = True
            self._finish(job, result=cached)
            return job
        try:
            depth = self.queue.offer(job)
        except AdmissionRejected:
            self.metrics.counter("service.jobs.rejected").inc()
            del self._jobs[job.id]
            raise
        # Write-ahead: the accepted record is durable (per the sync
        # cadence) before the client is ever told "queued".
        self._journal_accepted(job)
        job.state = "queued"
        self._emit(job, "queued", key=spec.key_id(), depth=depth)
        return job

    def job(self, job_id: int) -> Optional[Job]:
        """Look up a submitted job by id."""
        return self._jobs.get(job_id)

    # -- crash recovery -----------------------------------------------------

    def _recover(self) -> None:
        """Re-admit journaled jobs with no terminal record (idempotent).

        Runs once, from :meth:`start`, against the journal snapshot the
        constructor captured.  A pending spec that no longer validates
        (schema drift, damaged payload) is dropped and counted — it can
        never run, so resurrecting it would only wedge the queue.
        """
        replay, self._replay = self._replay, None
        if replay is not None:
            for payload in replay.pending.values():
                try:
                    spec = JobSpec.from_dict(payload)
                    spec.validate()
                except Exception:
                    self.recovery["dropped_corrupt"] += 1
                    continue
                self._readmit(spec)
                self.recovery["recovered_jobs"] += 1
        for name in ("recovered_jobs", "recovered_results", "dropped_corrupt"):
            if self.recovery[name]:
                self.metrics.counter(f"service.durability.{name}").inc(
                    self.recovery[name]
                )

    def _readmit(self, spec: JobSpec) -> None:
        """Admission for journal replay: no gate, no re-journaling.

        The previous process generation already admitted (and journaled)
        this job, so recovery bypasses the tenant gate and the
        high-water mark — replay can never drop a job the service
        already promised to run.  A recovered result in the warmed
        store completes the job immediately, which also journals the
        terminal record the crash lost.
        """
        job = Job(
            id=next(self._ids),
            spec=spec,
            submitted_wall=time.monotonic(),
            events=asyncio.Queue(),
            done=asyncio.get_running_loop().create_future(),
        )
        self._jobs[job.id] = job
        self.metrics.counter("service.jobs.recovered").inc()
        cached = self.store.get(spec.key_sha(), record=True)
        if cached is not None:
            self._emit(job, "cached", key=spec.key_id())
            self.metrics.counter("service.jobs.cached").inc()
            job.cached = True
            self._finish(job, result=cached)
            return
        depth = self.queue.offer(job, force=True)
        job.state = "queued"
        self._emit(job, "queued", key=spec.key_id(), depth=depth)

    def _journal_accepted(self, job: Job) -> None:
        if self.journal is not None and not self.journal.closed:
            self.journal.append_accepted(job.spec.key_sha(), job.spec.as_dict())

    def _journal_terminal(self, job: Job, status: str) -> None:
        if self.journal is not None and not self.journal.closed:
            self.journal.append_terminal(job.spec.key_sha(), status)

    # -- dispatch -----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            await self._semaphore.acquire()
            try:
                job = await self.queue.get()
            except asyncio.CancelledError:
                self._semaphore.release()
                raise
            task = asyncio.create_task(self._run_job(job))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_job(self, job: Job) -> None:
        try:
            await self._execute(job)
        except asyncio.CancelledError:
            if job.state in ("queued", "running"):
                self._finish(job, error="service shut down during execution")
            raise
        finally:
            self._semaphore.release()

    async def _execute(self, job: Job) -> None:
        job.state = "running"
        job.started_wall = time.monotonic()
        latency = job.started_wall - job.submitted_wall
        self.wall_queue_latencies.append(latency)
        self.metrics.histogram("service.queue.wall_seconds").observe(latency)
        self._emit(job, "started")
        # Wall-clock deadline budget, measured from submission: a job
        # that already overstayed while queued times out without ever
        # touching a worker.
        remaining = None
        if job.spec.deadline_seconds is not None:
            remaining = job.spec.deadline_seconds - latency
            if remaining <= 0:
                self._finish_timeout(job)
                return
        key = job.spec.key_sha()
        cached = self.store.get(key)
        if cached is not None:
            job.cached = True
            self.metrics.counter("service.jobs.cached").inc()
            self._finish(job, result=cached)
            return
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Coalesce: an identical job is already executing; wait
            # for its result instead of running the work twice.  The
            # shield keeps the upstream execution alive if only this
            # waiter's deadline expires.
            self._emit(job, "coalesced")
            try:
                waiter = asyncio.shield(inflight)
                if remaining is not None:
                    result = await asyncio.wait_for(waiter, remaining)
                else:
                    result = await waiter
            except asyncio.TimeoutError:
                self._finish_timeout(job)
                return
            except Exception as exc:
                self._finish(job, error=str(exc))
                return
            job.cached = True
            self.metrics.counter("service.jobs.cached").inc()
            self._finish(job, result=result)
            return
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            dispatch = self.supervisor.run(
                job.spec.as_dict(),
                key_id=job.spec.key_id(),
                label=job.spec.label(),
            )
            if remaining is not None:
                result = await asyncio.wait_for(dispatch, remaining)
            else:
                result = await dispatch
        except asyncio.TimeoutError:
            # Cooperative cancellation: wait_for already cancelled the
            # dispatch, releasing this slot; coalesced waiters see the
            # same timeout instead of hanging on an orphaned future.
            if not future.done():
                future.set_exception(JobTimeout(
                    f"coalesced upstream job {job.id} hit its deadline"
                ))
                future.exception()
            self.gate.record(job.spec.tenant, ok=False)
            self._finish_timeout(job)
            return
        except asyncio.CancelledError:
            if not future.done():
                future.cancel()
            raise
        except Exception as exc:
            if not future.done():
                future.set_exception(exc)
                # Coalesced waiters consume the exception; nobody
                # else should trip "exception never retrieved".
                future.exception()
            self.gate.record(job.spec.tenant, ok=False)
            self._finish(job, error=str(exc))
            return
        finally:
            self._inflight.pop(key, None)
        self.store.put(key, result)
        self.gate.record(job.spec.tenant, ok=bool(result.get("ok", True)))
        self._finish(job, result=result)
        if not future.done():
            future.set_result(result)

    # -- completion ---------------------------------------------------------

    def _emit(self, job: Job, event: str, **extra) -> None:
        payload = {"event": event, "job": job.id, **extra}
        job.events.put_nowait(payload)

    def _finish_timeout(self, job: Job) -> None:
        """Terminal ``timeout``: the wall-clock deadline budget ran out."""
        job.finished_wall = time.monotonic()
        job.state = "timeout"
        deadline = job.spec.deadline_seconds
        job.error = f"deadline of {deadline:g}s exceeded"
        self.metrics.counter("service.jobs.timeout").inc()
        self._journal_terminal(job, "timeout")
        self._emit(job, "timeout", deadline=deadline)
        if not job.done.done():
            job.done.set_exception(JobTimeout(job.error))
            job.done.exception()

    def _finish(
        self, job: Job, result: Optional[dict] = None, error: Optional[str] = None
    ) -> None:
        job.finished_wall = time.monotonic()
        if error is not None:
            job.state = "failed"
            job.error = error
            self.metrics.counter("service.jobs.failed").inc()
            self._journal_terminal(job, "failed")
            self._emit(job, "failed", error=error)
            if not job.done.done():
                job.done.set_exception(RuntimeError(error))
                job.done.exception()
        else:
            job.state = "done"
            job.result = result
            self.metrics.counter("service.jobs.completed").inc()
            self._journal_terminal(job, "done")
            self.metrics.counter("service.sim_seconds").inc(
                result.get("sim_time", 0.0)
            )
            fault_stats = result.get("fault_stats")
            if fault_stats:
                self.metrics.counter("service.faults.injected").inc(
                    fault_stats.get("total_injected", 0)
                )
                self.metrics.counter("service.faults.sdc_escapes").inc(
                    fault_stats.get("sdc_escapes", 0)
                )
            self._emit(job, "result", result=result, cached=job.cached)
            self._emit(job, "done", ok=bool(result.get("ok", True)))
            if not job.done.done():
                job.done.set_result(result)

    # -- observation --------------------------------------------------------

    async def stream(self, job: Job):
        """Yield *job*'s events until it reaches a terminal state."""
        while True:
            event = await job.events.get()
            yield event
            if event["event"] in ("done", "failed", "timeout"):
                return

    async def result(self, job: Job) -> dict:
        """Wait for *job* and return its result dict (raises on failure)."""
        return await job.done

    def snapshot(self) -> dict:
        """Fleet-wide service telemetry, JSON-ready."""
        snap = {
            "queue_depth": self.queue.depth,
            "queue_accepted": self.queue.accepted,
            "queue_rejected": self.queue.rejected,
            "store": self.store.cache_stats(),
            "jobs": len(self._jobs),
            "workers": self.pool.workers,
            "draining": self._draining,
            "supervisor": self.supervisor.stats(),
            "tenants": self.gate.stats(),
            "metrics": self.metrics.snapshot(),
        }
        if self.journal is not None:
            snap["durability"] = {
                "recovery": dict(self.recovery),
                "journal": self.journal.stats(),
            }
        return snap
