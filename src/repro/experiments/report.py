"""Plain-text rendering of reproduced figures and tables."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureData
from repro.experiments.tables import TableData

BAR_WIDTH = 40


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with per-column alignment."""
    columns = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_bars(
    series: Dict[str, float],
    unit: str = "x",
    reference: Optional[float] = 1.0,
    log: bool = False,
) -> str:
    """ASCII horizontal bar chart; a '|' marks the reference value."""
    import math

    if not series:
        return "(no data)"
    values = list(series.values())
    top = max(values + ([reference] if reference else []))
    name_width = max(len(n) for n in series)

    def scale(value: float) -> int:
        if value <= 0:
            return 0
        if log:
            lo = min(min(values), 0.01)
            span = math.log(top / lo) or 1.0
            return int(BAR_WIDTH * math.log(max(value, lo) / lo) / span)
        return int(BAR_WIDTH * value / top)

    lines = []
    ref_pos = scale(reference) if reference else -1
    for name, value in series.items():
        length = scale(value)
        bar = "".join(
            "|" if i == ref_pos and reference else ("#" if i < length else " ")
            for i in range(BAR_WIDTH + 1)
        )
        lines.append(f"{name.ljust(name_width)} {bar} {value:8.3f}{unit}")
    return "\n".join(lines)


def render_figure(fig: FigureData, log: bool = False) -> str:
    """Render one reproduced figure as a titled bar chart."""
    lines = [f"=== {fig.figure_id}: {fig.title} ===", f"({fig.ylabel})", ""]
    lines.append(render_bars(fig.series, log=log))
    for label, extra in fig.extra_series.items():
        lines.append("")
        lines.append(f"-- {label} --")
        lines.append(render_bars(extra, log=log))
    for note in fig.notes:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_gantt(
    timeline,
    resources: Optional[Sequence[str]] = None,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of a Timeline's trace.

    One row per resource; ``#`` marks occupied time.  This is how the
    examples visualize data streaming's transfer/compute overlap — the
    Figure 5(d) picture, recovered from an actual execution.
    """
    entries = timeline.entries()
    if not entries:
        return "(empty timeline)"
    finish = timeline.finish_time()
    if resources is None:
        seen = []
        for entry in entries:
            if entry.resource not in seen:
                seen.append(entry.resource)
        resources = seen
    name_width = max(len(r) for r in resources)
    lines = []
    for resource in resources:
        row = [" "] * width
        for entry in timeline.entries(resource):
            lo = int(entry.start / finish * (width - 1))
            hi = int(entry.end / finish * (width - 1))
            for i in range(lo, max(hi, lo) + 1):
                row[i] = "#"
        busy = timeline.busy_time(resource)
        lines.append(
            f"{resource.ljust(name_width)} |{''.join(row)}| "
            f"{busy * 1000:8.2f} ms busy"
        )
    lines.append(
        f"{' ' * name_width} 0{' ' * (width - 10)}{finish * 1000:8.2f} ms"
    )
    return "\n".join(lines)


def render_table_data(data: TableData) -> str:
    """Render one reproduced table with its notes."""
    lines = [f"=== {data.table_id}: {data.title} ===", ""]
    lines.append(render_table(data.headers, data.rows))
    for note in data.notes:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)
