"""COI-like low-level offload runtime.

The paper drops below LEO for thread reuse: "In our implementation, we use
lower-level COI library to control the synchronization between CPU and
MIC."  This module is that layer for the simulated machine: device buffer
management, DMA transfers (sync and async), kernel launches with launch
overhead, the persistent-kernel signal fast path, and named signals for
``signal``/``wait`` clauses.

Data movement is performed eagerly on the numpy buffers (program order
equals issue order in our interpreter), while *timing* is scheduled on the
shared :class:`~repro.hardware.event_sim.Timeline`, so transfer/compute
overlap shows up in simulated time without affecting correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import RuntimeFault
from repro.hardware.event_sim import Clock, Event, Timeline
from repro.hardware.memory import DeviceMemoryManager
from repro.hardware.pcie import dma_transfer_time
from repro.hardware.spec import MachineSpec
from repro.runtime.values import DeviceSpace, HostSpace

DMA_TO_DEVICE = "dma:h2d"
DMA_FROM_DEVICE = "dma:d2h"
DEVICE = "mic"
HOST = "cpu"


@dataclass
class CoiStats:
    """Counters the experiment harness reports."""

    bytes_to_device: float = 0.0
    bytes_from_device: float = 0.0
    transfers_to_device: int = 0
    transfers_from_device: int = 0
    kernel_launches: int = 0
    kernel_signals: int = 0
    allocations: int = 0
    #: Pure kernel compute time, excluding launch/signal overheads.
    kernel_compute_seconds: float = 0.0


class CoiRuntime:
    """Low-level runtime bound to one simulated machine."""

    def __init__(
        self,
        spec: MachineSpec,
        timeline: Timeline,
        clock: Clock,
        device_memory: DeviceMemoryManager,
        host: HostSpace,
        device: DeviceSpace,
        scale: float = 1.0,
    ):
        self.spec = spec
        self.timeline = timeline
        self.clock = clock
        self.device_memory = device_memory
        self.host = host
        self.device = device
        self.scale = scale
        self.stats = CoiStats()
        self.signals: Dict[object, List[Event]] = {}
        self._persistent_live: set = set()

    # -- buffers ------------------------------------------------------------

    def alloc_buffer(self, name: str, count: int, dtype=np.float32) -> np.ndarray:
        """Allocate (or reuse) a device buffer of *count* elements."""
        itemsize = np.dtype(dtype).itemsize
        self.device_memory.allocate(name, count * itemsize)
        existing = self.device.arrays.get(name)
        if existing is None or len(existing) < count or existing.dtype != dtype:
            self.device.arrays[name] = np.zeros(count, dtype=dtype)
        self.stats.allocations += 1
        return self.device.arrays[name]

    def free_buffer(self, name: str) -> None:
        """Free the device buffer and its memory accounting."""
        if self.device_memory.holds(name):
            self.device_memory.free(name)
        self.device.arrays.pop(name, None)

    # -- transfers ------------------------------------------------------------

    def write_buffer(
        self,
        dest: str,
        dest_start: int,
        data: np.ndarray,
        deps: Iterable[Event] = (),
        sync: bool = True,
    ) -> Event:
        """Copy host *data* into device buffer *dest* at *dest_start*.

        The copy happens immediately (issue order is program order); the
        DMA time is scheduled on the host-to-device channel.  When *sync*
        the host clock blocks on completion, otherwise the returned event
        is the dependency later operations use.
        """
        buf = self.device.array(dest)
        if dest_start < 0 or dest_start + len(data) > len(buf):
            raise RuntimeFault(
                f"transfer into {dest!r} out of range: "
                f"[{dest_start}, {dest_start + len(data)}) of {len(buf)}"
            )
        buf[dest_start : dest_start + len(data)] = data
        nbytes = data.nbytes * self.scale
        event = self.timeline.schedule(
            DMA_TO_DEVICE,
            dma_transfer_time(nbytes, self.spec.pcie),
            deps=deps,
            label=f"h2d:{dest}",
            not_before=self.clock.now,
        )
        self.stats.bytes_to_device += nbytes
        self.stats.transfers_to_device += 1
        if sync:
            self.clock.wait_until(event)
        return event

    def read_buffer(
        self,
        src: str,
        src_start: int,
        count: int,
        into: np.ndarray,
        into_start: int,
        deps: Iterable[Event] = (),
        sync: bool = True,
    ) -> Event:
        """Copy *count* elements of device buffer *src* back to host."""
        buf = self.device.array(src)
        if src_start < 0 or src_start + count > len(buf):
            raise RuntimeFault(
                f"transfer from {src!r} out of range: "
                f"[{src_start}, {src_start + count}) of {len(buf)}"
            )
        into[into_start : into_start + count] = buf[src_start : src_start + count]
        nbytes = count * buf.dtype.itemsize * self.scale
        event = self.timeline.schedule(
            DMA_FROM_DEVICE,
            dma_transfer_time(nbytes, self.spec.pcie),
            deps=deps,
            label=f"d2h:{src}",
            not_before=self.clock.now,
        )
        self.stats.bytes_from_device += nbytes
        self.stats.transfers_from_device += 1
        if sync:
            self.clock.wait_until(event)
        return event

    def raw_transfer(
        self,
        nbytes: float,
        to_device: bool,
        deps: Iterable[Event] = (),
        sync: bool = True,
        label: str = "raw",
    ) -> Event:
        """Schedule transfer time without touching named buffers.

        Used by the shared-memory runtimes, whose data lives in arena /
        page objects rather than named numpy buffers.
        """
        channel = DMA_TO_DEVICE if to_device else DMA_FROM_DEVICE
        event = self.timeline.schedule(
            channel,
            dma_transfer_time(nbytes * self.scale, self.spec.pcie),
            deps=deps,
            label=label,
            not_before=self.clock.now,
        )
        if to_device:
            self.stats.bytes_to_device += nbytes * self.scale
            self.stats.transfers_to_device += 1
        else:
            self.stats.bytes_from_device += nbytes * self.scale
            self.stats.transfers_from_device += 1
        if sync:
            self.clock.wait_until(event)
        return event

    # -- kernels ---------------------------------------------------------------

    def launch_kernel(
        self,
        duration: float,
        deps: Iterable[Event] = (),
        label: str = "kernel",
        persistent_key: Optional[str] = None,
    ) -> Event:
        """Run device work of *duration* seconds (already scaled).

        A fresh launch pays the LEO/COI kernel launch overhead K.  With a
        *persistent_key*, only the first launch pays K; subsequent work
        under the same key pays the much smaller signal overhead — the
        thread-reuse optimization of Section III-C.
        """
        mic = self.spec.mic
        if persistent_key is None:
            overhead = mic.kernel_launch_overhead
            self.stats.kernel_launches += 1
        elif persistent_key not in self._persistent_live:
            self._persistent_live.add(persistent_key)
            overhead = mic.kernel_launch_overhead
            self.stats.kernel_launches += 1
        else:
            overhead = mic.signal_overhead
            self.stats.kernel_signals += 1
        self.stats.kernel_compute_seconds += duration
        return self.timeline.schedule(
            DEVICE,
            overhead + duration,
            deps=deps,
            label=label,
            not_before=self.clock.now,
        )

    def end_persistent(self, key: str) -> None:
        """Terminate a persistent kernel (next use pays a full launch)."""
        self._persistent_live.discard(key)

    # -- signals -----------------------------------------------------------------

    def post_signal(self, tag: object, events: Iterable[Event]) -> None:
        """Record completion events under *tag* for a later wait."""
        self.signals.setdefault(tag, []).extend(events)

    def wait_signal(self, tag: object) -> None:
        """Block the host until everything posted under *tag* completes."""
        events = self.signals.pop(tag, [])
        for event in events:
            self.clock.wait_until(event)
