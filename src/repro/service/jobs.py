"""Job model for the campaign service.

A :class:`JobSpec` describes one unit of work the service can execute —
a MiniC program run, a benchmark (all three Table II variants), or one
fault-campaign scenario cell — as plain data: JSON-able, hashable, and
picklable, so specs travel over the wire protocol and into pool workers
unchanged.

Two properties carry the whole determinism story:

* :meth:`JobSpec.key` is the same provenance tuple the experiments
  harness caches on — a pure function of every execution-relevant field
  (tenant and priority are scheduling hints, not provenance) — so the
  shared result store can serve identical submissions from cache across
  clients and across worker processes;
* :func:`execute_job` is a module-level pure function of the spec dict.
  Its result — output digests, op counters, simulated times, fault
  stats — is bit-identical to running the same job directly through the
  CLI (``repro run`` / ``repro bench`` / ``repro faults``), which the
  service smoke tests assert digest-for-digest.

Workers stay warm: each pool process keeps memoized
:class:`~repro.experiments.harness.SuiteRunner` instances (whose caches
hold parsed programs and baseline runs) and the campaign layer's
baseline memo, so a stream of jobs against the same workload reuses the
simulator setup instead of rebuilding it per request.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

#: Job kinds the service executes.
JOB_KINDS = ("run", "bench", "faults")

_DTYPES = {
    "float": np.float32,
    "double": np.float64,
    "int": np.int32,
}


# -- input-binding parsers ----------------------------------------------------
#
# The canonical parsers for the CLI's NAME=SIZE[:DTYPE[:KIND]] array and
# NAME=VALUE scalar specs.  They raise ValueError so programmatic callers
# (the service, the wire protocol) get a normal exception; the CLI wraps
# them in SystemExit.


def parse_array_spec(spec: str, rng: np.random.Generator) -> tuple:
    """Parse one ``NAME=SIZE[:DTYPE[:KIND]]`` array binding."""
    name, _, rest = spec.partition("=")
    if not rest:
        raise ValueError(f"bad --array spec {spec!r}: expected NAME=SIZE[...]")
    parts = rest.split(":")
    try:
        size = int(parts[0])
    except ValueError:
        raise ValueError(
            f"bad --array spec {spec!r}: size {parts[0]!r} is not an integer"
        )
    dtype = _DTYPES.get(parts[1] if len(parts) > 1 else "float", np.float32)
    kind = parts[2] if len(parts) > 2 else "random"
    if kind == "zeros":
        value = np.zeros(size, dtype=dtype)
    elif kind == "ones":
        value = np.ones(size, dtype=dtype)
    elif kind == "arange":
        value = np.arange(size, dtype=dtype)
    elif kind == "random":
        value = (rng.random(size) * 100).astype(dtype)
    else:
        raise ValueError(f"bad array kind {kind!r}")
    return name, value


def parse_scalar_spec(spec: str) -> tuple:
    """Parse one ``NAME=VALUE`` scalar binding."""
    name, _, rest = spec.partition("=")
    if not rest:
        raise ValueError(f"bad --scalar spec {spec!r}: expected NAME=VALUE")
    try:
        value: object = int(rest)
    except ValueError:
        try:
            value = float(rest)
        except ValueError:
            raise ValueError(
                f"bad --scalar spec {spec!r}: {rest!r} is not a number"
            )
    return name, value


def digest_array(value: np.ndarray) -> str:
    """A stable content digest of one array (dtype, shape, and bytes)."""
    h = hashlib.sha256()
    h.update(str(value.dtype).encode())
    h.update(str(value.shape).encode())
    h.update(np.ascontiguousarray(value).tobytes())
    return h.hexdigest()


def digest_arrays(arrays: Dict[str, np.ndarray]) -> Dict[str, str]:
    """Per-array digests, name-sorted so dict order is canonical."""
    return {name: digest_array(arrays[name]) for name in sorted(arrays)}


def _pairs(mapping) -> Tuple[Tuple[str, object], ...]:
    """A hashable, canonical view of a dict (or pair iterable)."""
    if mapping is None:
        return ()
    items = mapping.items() if isinstance(mapping, dict) else mapping
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work, as plain (hashable, JSON-able) data."""

    kind: str = "bench"
    #: Benchmark/fault-cell workload name (``bench``/``faults`` kinds).
    workload: Optional[str] = None
    #: Benchmark variant for ``faults`` cells (``bench`` runs all three).
    variant: str = "opt"
    #: Scenario index of a ``faults`` cell.
    scenario: int = 0
    #: MiniC source text (``run`` kind).
    source: Optional[str] = None
    #: Array bindings, CLI ``NAME=SIZE[:DTYPE[:KIND]]`` syntax (``run``).
    arrays: Tuple[str, ...] = ()
    #: Scalar bindings, CLI ``NAME=VALUE`` syntax (``run``).
    scalars: Tuple[str, ...] = ()
    #: Apply the COMP pipeline before running (``run`` kind).
    optimize: bool = False
    #: Simulation scale factor (``run`` kind).
    scale: float = 1.0
    seed: Optional[int] = None
    engine: Optional[str] = None
    devices: int = 1
    #: Fault rates, ``(site, prob)`` pairs (``faults`` kind).
    rates: Tuple[Tuple[str, float], ...] = ()
    #: ResiliencePolicy overrides, ``(knob, value)`` pairs (``faults``).
    policy: Tuple[Tuple[str, object], ...] = ()
    #: Return the job's Chrome trace events with the result.
    trace: bool = False
    #: Scheduling hints — NOT part of the provenance key.
    priority: int = 1
    tenant: str = "default"
    #: Wall-clock deadline from submission (seconds); the service emits
    #: a terminal ``timeout`` event and abandons the job past it.  A
    #: service-level knob like priority/tenant: it bounds *whether* an
    #: answer arrives, never what it would be, so it stays out of the
    #: provenance key and cached results remain shareable.
    deadline_seconds: Optional[float] = None

    def __post_init__(self):
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "scalars", tuple(self.scalars))
        object.__setattr__(self, "rates", _pairs(self.rates))
        object.__setattr__(self, "policy", _pairs(self.policy))

    # -- identity -----------------------------------------------------------

    def key(self) -> tuple:
        """The provenance tuple identical submissions share.

        Everything that determines the result participates; the
        scheduling hints (priority, tenant) deliberately do not, so two
        tenants asking the same question share one cached answer.
        """
        return (
            self.kind, self.workload, self.variant, self.scenario,
            self.source, self.arrays, self.scalars, self.optimize,
            self.scale, self.seed, self.engine, self.devices,
            self.rates, self.policy, self.trace,
        )

    def key_sha(self) -> str:
        """The full sha256 of :meth:`key`: the durable provenance id.

        This is the string the write-ahead journal and the persistent
        result store key on — unlike the provenance tuple it survives
        process boundaries and file round-trips unchanged.
        """
        return hashlib.sha256(repr(self.key()).encode()).hexdigest()

    def key_id(self) -> str:
        """A compact stable identifier of :meth:`key` for wire payloads."""
        return self.key_sha()[:16]

    def label(self) -> str:
        """Human-readable job label for logs and trace lanes."""
        if self.kind == "run":
            return f"run:{self.key_id()}"
        if self.kind == "bench":
            return f"bench:{self.workload}"
        return f"faults:{self.workload}/s{self.scenario}"

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Reject malformed specs with errors naming the offending field."""
        from repro.runtime.executor import ENGINES
        from repro.workloads.suite import workload_names

        if self.kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {self.kind!r}: valid kinds are "
                + ", ".join(JOB_KINDS)
            )
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}: valid engines are "
                + ", ".join(ENGINES)
            )
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.kind == "run":
            if not self.source:
                raise ValueError("run job needs MiniC source text")
        else:
            if self.workload not in workload_names():
                raise ValueError(
                    f"unknown workload {self.workload!r}; "
                    f"know {sorted(workload_names())}"
                )
        if self.kind == "faults":
            if self.scenario < 0:
                raise ValueError(f"scenario must be >= 0, got {self.scenario}")
            if self.variant not in ("cpu", "mic", "opt"):
                raise ValueError(f"unknown variant {self.variant!r}")

    # -- wire format --------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able view (tuples become lists)."""
        payload = dataclasses.asdict(self)
        payload["arrays"] = list(self.arrays)
        payload["scalars"] = list(self.scalars)
        payload["rates"] = [list(pair) for pair in self.rates]
        payload["policy"] = [list(pair) for pair in self.policy]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Inverse of :meth:`as_dict`; unknown fields are errors."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown job spec fields {sorted(unknown)}; "
                f"know {sorted(known)}"
            )
        data = dict(payload)
        for name in ("rates", "policy"):
            if name in data and data[name] is not None:
                data[name] = tuple(tuple(pair) for pair in data[name])
        return cls(**data)


# -- execution ----------------------------------------------------------------
#
# Module-level so pool workers receive the function by pickled reference;
# all state below is per-process warm cache, invisible in results.

#: Warm per-process SuiteRunner memo: a stream of bench jobs against the
#: same (engine, seed, devices) reuses one runner — and therefore its
#: result store, parse caches, and simulator setup.
_WARM_RUNNERS: Dict[tuple, object] = {}


def _warm_runner(engine, seed, devices):
    from repro.experiments.harness import SuiteRunner

    key = (engine, seed, devices)
    runner = _WARM_RUNNERS.get(key)
    if runner is None:
        runner = _WARM_RUNNERS[key] = SuiteRunner(
            engine=engine, seed=seed, devices=devices
        )
    return runner


def warm_stats() -> dict:
    """Diagnostic view of this process's warm state (not in results)."""
    from repro.faults import campaign

    return {
        "warm_runners": len(_WARM_RUNNERS),
        "warm_variants": sum(len(r._store) for r in _WARM_RUNNERS.values()),
        "baseline_memo": len(campaign._BASELINE_MEMO),
    }


def _stats_summary(stats) -> dict:
    """The JSON-able ExecutionStats subset job results report."""
    return {
        "total_time": stats.total_time,
        "device_compute_time": stats.device_compute_time,
        "transfer_to_device_time": stats.transfer_to_device_time,
        "transfer_from_device_time": stats.transfer_from_device_time,
        "bytes_to_device": stats.bytes_to_device,
        "bytes_from_device": stats.bytes_from_device,
        "kernel_launches": stats.kernel_launches,
        "kernel_signals": stats.kernel_signals,
        "offload_count": stats.offload_count,
        "device_peak_bytes": stats.device_peak_bytes,
        "ops": dataclasses.asdict(stats.ops),
    }


def _merged_trace_events(tracers) -> list:
    """Fold per-run tracers into one sorted event list (own pid each)."""
    from repro.obs.export import chrome_trace_events, sort_trace_events

    events: list = []
    for pid, (label, tracer) in enumerate(tracers):
        events.extend(chrome_trace_events(tracer, pid=pid, process_name=label))
    return sort_trace_events(events)


def _execute_run(spec: JobSpec) -> dict:
    from repro.minic.parser import parse
    from repro.runtime.executor import Machine, run_program
    from repro.transforms.pipeline import CompOptimizer

    rng = np.random.default_rng(spec.seed or 0)
    arrays = dict(parse_array_spec(s, rng) for s in spec.arrays)
    scalars = dict(parse_scalar_spec(s) for s in spec.scalars)
    program = parse(spec.source)
    if spec.optimize:
        CompOptimizer().optimize(program)
    tracer = None
    tracers = []
    if spec.trace:
        from repro.obs import Tracer

        tracer = Tracer()
        tracers.append((spec.label(), tracer))
    machine = Machine(scale=spec.scale, tracer=tracer, devices=spec.devices)
    result = run_program(
        program, arrays=arrays, scalars=scalars, machine=machine,
        engine=spec.engine or "auto",
    )
    payload = {
        "sim_time": result.stats.total_time,
        "outputs": digest_arrays(machine.host.arrays),
        "stats": _stats_summary(result.stats),
        "warm_sessions": machine.coi.live_persistent_sessions,
        "ok": True,
        "error": None,
    }
    if spec.trace:
        payload["trace_events"] = _merged_trace_events(tracers)
    return payload


def _execute_bench(spec: JobSpec) -> dict:
    runner = _warm_runner(spec.engine, spec.seed, spec.devices)
    tracers = []
    if spec.trace:
        # Traced bench runs bypass the warm runner: its cache would make
        # the trace depend on what previous jobs already ran.
        from repro.experiments.harness import SuiteRunner
        from repro.obs import Tracer

        def factory(name, variant):
            tracer = Tracer()
            tracers.append((f"{name}/{variant}", tracer))
            return tracer

        runner = SuiteRunner(
            engine=spec.engine, seed=spec.seed, devices=spec.devices,
            tracer_factory=factory,
        )
    result = runner.run_benchmark(spec.workload)
    variants = {}
    for variant, run in result.runs.items():
        variants[variant] = {
            "sim_time": run.time,
            "outputs": digest_arrays(run.outputs),
            "ops": dataclasses.asdict(run.stats.ops),
        }
    payload = {
        "sim_time": result.opt_time,
        "variants": variants,
        "unopt_speedup": result.unopt_speedup,
        "opt_speedup": result.opt_speedup,
        "relative_gain": result.relative_gain,
        "ok": result.outputs_match(),
        "error": None,
    }
    if spec.trace:
        payload["trace_events"] = _merged_trace_events(tracers)
    return payload


def _execute_faults(spec: JobSpec) -> dict:
    from repro.faults.campaign import scenario_cell, validate_campaign_config
    from repro.faults.policy import ResiliencePolicy

    rates = dict(spec.rates) or None
    try:
        policy = ResiliencePolicy(**dict(spec.policy))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad policy for faults job: {exc}")
    validate_campaign_config(rates, policy, spec.devices)
    tracer = None
    tracers = []
    if spec.trace:
        from repro.obs import Tracer

        tracer = Tracer()
        tracers.append((spec.label(), tracer))
    outcome = scenario_cell(
        spec.workload, spec.scenario, spec.seed or 0, spec.variant,
        spec.engine, rates, policy, tracer, spec.devices,
    )
    payload = {
        "sim_time": outcome.time,
        "outcome": outcome.as_dict(),
        "fault_stats": outcome.stats.as_dict(),
        "ok": outcome.ok,
        "error": outcome.error,
    }
    if spec.trace:
        payload["trace_events"] = _merged_trace_events(tracers)
    return payload


_EXECUTORS = {
    "run": _execute_run,
    "bench": _execute_bench,
    "faults": _execute_faults,
}


def execute_job(payload: dict) -> dict:
    """Execute one job spec dict; module-level and picklable.

    The result is a deterministic, JSON-able function of the spec —
    worker identity, warm-cache state, and wall-clock never leak in —
    so the service's shared store can serve it to any client and a
    trace replay is byte-identical for any worker count.
    """
    spec = JobSpec.from_dict(payload)
    spec.validate()
    result = _EXECUTORS[spec.kind](spec)
    result["kind"] = spec.kind
    result["label"] = spec.label()
    result["key_id"] = spec.key_id()
    return result


@dataclass
class Job:
    """Service-side record of one submitted job (scheduling state)."""

    id: int
    spec: JobSpec
    #: queued -> running -> done | failed | timeout (rejections never
    #: make a Job).
    state: str = "queued"
    #: Wall-clock timestamps for live telemetry (never in summaries).
    submitted_wall: float = 0.0
    started_wall: float = 0.0
    finished_wall: float = 0.0
    result: Optional[dict] = None
    error: Optional[str] = None
    #: True when the result came from the shared store, not a worker.
    cached: bool = False
    #: Event sink, attached by the service (an asyncio.Queue).
    events: object = field(default=None, repr=False)
    #: Completion future, attached by the service.
    done: object = field(default=None, repr=False)
