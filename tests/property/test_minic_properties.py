"""Property-based tests (hypothesis) for the MiniC front end.

Invariants: printing then reparsing any AST yields a structurally equal
AST; the interpreter agrees with Python arithmetic on whatever the
expression generator produces.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr
from repro.minic.printer import to_source
from repro.runtime.executor import run_program

# --------------------------------------------------------------------------
# Expression generator
# --------------------------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x", "y", "n"])
_int_lits = st.integers(min_value=0, max_value=1000).map(ast.IntLit)
_float_lits = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda v: ast.FloatLit(round(v, 6)))
_idents = _names.map(ast.Ident)

_binops = st.sampled_from(["+", "-", "*", "/", "<", ">", "==", "!=", "&&", "||"])


def _exprs(depth: int = 3):
    base = st.one_of(_int_lits, _float_lits, _idents)
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(ast.BinOp, _binops, sub, sub),
        st.builds(lambda e: ast.UnOp("-", e), sub),
        st.builds(lambda e: ast.UnOp("!", e), sub),
        st.builds(ast.Cond, sub, sub, sub),
        st.builds(lambda b, i: ast.Subscript(b, i), _idents, sub),
        st.builds(lambda a: ast.Call("sqrt", [a]), sub),
    )


class TestExpressionRoundTrip:
    @given(_exprs())
    @settings(max_examples=200, deadline=None)
    def test_print_parse_roundtrip(self, expr):
        printed = to_source(expr)
        assert parse_expr(printed) == expr


# --------------------------------------------------------------------------
# Statement generator
# --------------------------------------------------------------------------

_assign_targets = st.one_of(
    _idents, st.builds(lambda b, i: ast.Subscript(b, i), _idents, _exprs(1))
)
_stmts_leaf = st.one_of(
    st.builds(ast.Assign, _assign_targets, _exprs(2)),
    st.builds(
        lambda n, e: ast.VarDecl(n, ast.FLOAT, e), _names, _exprs(2)
    ),
    st.builds(ast.Return, _exprs(1)),
)


def _stmts(depth: int = 2):
    if depth == 0:
        return _stmts_leaf
    sub = _stmts(depth - 1)
    return st.one_of(
        _stmts_leaf,
        st.builds(
            lambda c, t, e: ast.If(c, ast.Block([t]), ast.Block([e])),
            _exprs(1),
            sub,
            sub,
        ),
        st.builds(
            lambda v, bound, body: ast.For(
                ast.VarDecl(v, ast.INT, ast.IntLit(0)),
                ast.BinOp("<", ast.Ident(v), bound),
                ast.Assign(ast.Ident(v), ast.IntLit(1), "+="),
                ast.Block([body]),
            ),
            st.sampled_from(["i", "j", "k"]),
            _exprs(0),
            sub,
        ),
        st.builds(lambda a, b: ast.Block([a, b]), sub, sub),
    )


class TestStatementRoundTrip:
    @given(st.lists(_stmts(), min_size=1, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_program_roundtrip(self, stmts):
        program = ast.Program(
            [ast.FuncDef("main", ast.VOID, [], ast.Block(stmts))]
        )
        printed = to_source(program)
        assert parse(printed) == program


# --------------------------------------------------------------------------
# Interpreter arithmetic vs Python
# --------------------------------------------------------------------------


def _py_eval(expr, env):
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Ident):
        return env[expr.name]
    if isinstance(expr, ast.UnOp):
        value = _py_eval(expr.operand, env)
        return -value if expr.op == "-" else int(not value)
    if isinstance(expr, ast.Cond):
        return (
            _py_eval(expr.then, env)
            if _py_eval(expr.cond, env)
            else _py_eval(expr.other, env)
        )
    if isinstance(expr, ast.Call):
        return math.sqrt(abs(_py_eval(expr.args[0], env)) + 1.0)
    left, right = _py_eval(expr.left, env), _py_eval(expr.right, env)
    op = expr.op
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            q = abs(left) // abs(right)
            return q if (left >= 0) == (right >= 0) else -q
        return left / right
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise AssertionError(op)


_arith = st.deferred(
    lambda: st.one_of(
        st.integers(min_value=1, max_value=50).map(ast.IntLit),
        st.sampled_from(["a", "b"]).map(ast.Ident),
        st.builds(
            ast.BinOp,
            st.sampled_from(["+", "-", "*", "<", ">", "==", "&&", "||"]),
            _arith,
            _arith,
        ),
        st.builds(lambda e: ast.UnOp("-", e), _arith),
        st.builds(ast.Cond, _arith, _arith, _arith),
    )
)


class TestInterpreterAgreesWithPython:
    @given(_arith)
    @settings(max_examples=150, deadline=None)
    def test_integer_arithmetic(self, expr):
        env = {"a": 7, "b": 3}
        source = f"void main() {{ result = {to_source(expr)}; }}"
        got = run_program(source, scalars=dict(env)).scalar("result")
        assert got == _py_eval(expr, env)
