"""Seeded fault campaigns over the benchmark suite.

A campaign runs each workload once fault-free (the baseline) and then
under *N* seeded fault scenarios, asserting the resilience contract:

* **bit-identical outputs** — recovery may cost time but never changes
  results (``numpy.array_equal``, not ``allclose``).  A scenario with
  *SDC escapes* (silent corruption the integrity mode deliberately left
  undetected, e.g. ``integrity_mode="off"``) is exempt: escaped
  corruption reaching host output is exactly what the escape counter
  reports, not a contract violation;
* **recovery is never free** — whenever a scenario injected at least one
  announced fault, simulated time strictly exceeds the baseline.  Silent
  detection and repair also charge the clock, but host-side checksum
  time can hide under DMA/kernel slack, so it must only never *reduce*
  time (undetected silent faults cost nothing by definition);
* **visible accounting** — scenarios that injected faults report nonzero
  :class:`~repro.faults.stats.FaultStats` totals, including the
  per-site injected/detected/corrected/escaped coverage matrix.

Each scenario's plan seed is derived from ``(campaign seed, scenario
index, crc32(workload name))`` so scenarios are independent, workloads
are decorrelated, and the whole campaign replays exactly from one seed.
"""

from __future__ import annotations

import dataclasses
import zlib
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.faults.plan import FaultPlan, split_device_key
from repro.faults.policy import ResiliencePolicy
from repro.faults.stats import FaultStats
from repro.hardware.device import PROBE_SEMANTICS
from repro.obs.provenance import build_provenance

#: Pool class used for ``jobs > 1`` fan-out; a module attribute so tests
#: can substitute a thread pool or a deliberately crashing double.
_POOL_CLS = ProcessPoolExecutor

#: Per-process baseline memo: each worker re-derives a workload's
#: fault-free baseline at most once, keyed on everything that determines
#: it.  Baselines are deterministic, so worker-local recomputation
#: cannot perturb campaign results.
_BASELINE_MEMO: Dict[tuple, object] = {}


def scenario_seed(seed: int, scenario: int, workload: str) -> tuple:
    """The derived fault-plan seed for one (scenario, workload) cell."""
    return (seed, scenario, zlib.crc32(workload.encode("utf-8")))


def outputs_identical(
    base: Dict[str, np.ndarray], other: Dict[str, np.ndarray]
) -> bool:
    """True when both runs produced bit-identical output arrays."""
    if set(base) != set(other):
        return False
    return all(np.array_equal(base[name], other[name]) for name in base)


@dataclass
class ScenarioOutcome:
    """One (workload, scenario) cell of a campaign."""

    workload: str
    scenario: int
    plan_seed: tuple
    baseline_time: float
    time: float
    identical: bool
    stats: FaultStats
    #: Interpreter error message when escaped corruption crashed the
    #: program (e.g. a flipped byte drove ``log`` out of its domain);
    #: None for scenarios that ran to completion.
    error: Optional[str] = None

    @property
    def faults_injected(self) -> int:
        """Faults the scenario's plan injected into the run."""
        return self.stats.total_injected

    @property
    def ok(self) -> bool:
        """The resilience contract held for this cell."""
        if self.error is not None:
            # A crash is acceptable only as the visible consequence of
            # corruption the integrity mode deliberately let escape.
            return self.stats.sdc_escapes > 0
        if not self.identical and self.stats.sdc_escapes == 0:
            return False
        announced = self.faults_injected - self.stats.silent_injected
        if announced and self.time <= self.baseline_time:
            return False  # announced recovery is never free
        if self.time < self.baseline_time:
            return False  # integrity work can overlap slack, not undo time
        return True

    def as_dict(self) -> dict:
        """Plain-dict view for the summary JSON."""
        return {
            "workload": self.workload,
            "scenario": self.scenario,
            "plan_seed": list(self.plan_seed),
            "baseline_time": self.baseline_time,
            "time": self.time,
            "identical": self.identical,
            "ok": self.ok,
            "error": self.error,
            "silent_injected": self.stats.silent_injected,
            "silent_detected": self.stats.silent_detected,
            "sdc_escapes": self.stats.sdc_escapes,
            "stats": self.stats.as_dict(),
        }


@dataclass
class CampaignResult:
    """Every scenario outcome plus campaign-wide aggregates."""

    seed: int
    scenarios: int
    variant: str
    #: Interpreter engine the campaign ran under (None = per-workload).
    engine: Optional[str] = None
    #: Coprocessor cards every scenario machine was configured with.
    devices: int = 1
    #: The resilience policy every scenario ran with (knob overrides
    #: included), recorded so a summary JSON is self-describing.
    policy: Optional[ResiliencePolicy] = None
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    #: True when the campaign was cut short (interrupt or worker crash)
    #: and ``outcomes`` holds only the completed prefix.
    partial: bool = False

    @property
    def ok(self) -> bool:
        """True when every scenario honoured the resilience contract."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def totals(self) -> FaultStats:
        """Aggregate fault stats across all scenarios."""
        return FaultStats.merge(outcome.stats for outcome in self.outcomes)

    def as_dict(self) -> dict:
        """The summary JSON payload (``repro faults --out``)."""
        return {
            "provenance": build_provenance(seed=self.seed, engine=self.engine),
            "seed": self.seed,
            "scenarios": self.scenarios,
            "variant": self.variant,
            "engine": self.engine,
            "devices": self.devices,
            "policy": (
                dataclasses.asdict(self.policy) if self.policy is not None else None
            ),
            "ok": self.ok,
            "partial": self.partial,
            "totals": self.totals.as_dict(),
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }


def _baseline(name, seed, variant, engine, devices=1):
    """The (memoized) fault-free baseline run for one workload.

    The memo makes the worker-process path cheap: a worker handed
    several scenarios of the same workload re-runs the baseline once,
    not per scenario.  Baselines are deterministic functions of the key,
    so memoization is invisible in the results.  The baseline runs at
    the campaign's device count: the "recovery is never free" contract
    compares a faulted fleet against the same healthy fleet, not against
    a single card.
    """
    from repro.workloads.suite import get_workload

    key = (name, seed, variant, engine, devices)
    hit = _BASELINE_MEMO.get(key)
    if hit is None:
        workload = get_workload(name, seed=seed)
        machine = workload.machine(devices=devices) if devices > 1 else None
        hit = workload.run(variant, machine=machine, engine=engine)
        _BASELINE_MEMO[key] = hit
    return hit


def _scenario_cell(
    name: str,
    k: int,
    seed: int,
    variant: str,
    engine: Optional[str],
    rates: Optional[Dict[str, float]],
    policy: ResiliencePolicy,
    tracer=None,
    devices: int = 1,
) -> ScenarioOutcome:
    """Run one (workload, scenario) cell; module-level so pool workers
    can receive it by pickled reference."""
    from repro.workloads.suite import get_workload

    baseline = _baseline(name, seed, variant, engine, devices)
    workload = get_workload(name, seed=seed)
    plan_seed = scenario_seed(seed, k, name)
    plan = FaultPlan(seed=plan_seed, rates=rates)
    machine = workload.machine(
        fault_plan=plan, resilience=policy, tracer=tracer, devices=devices
    )
    error = None
    try:
        run = workload.run(variant, machine=machine, engine=engine)
    except ExecutionError as exc:
        # Escaped silent corruption can crash the program it reaches (a
        # flipped input byte driving a math builtin out of its domain).
        # The crash is itself the visible symptom the escape counter
        # reports, so record the scenario instead of aborting the
        # campaign; the finalize sweep below books the still-pending
        # corruption records as escapes.
        machine.finalize_integrity()
        error = str(exc)
        run = None
    return ScenarioOutcome(
        workload=name,
        scenario=k,
        plan_seed=plan_seed,
        baseline_time=baseline.time,
        time=machine.clock.now if run is None else run.time,
        identical=(
            run is not None
            and outputs_identical(baseline.outputs, run.outputs)
        ),
        stats=machine.fault_stats,
        error=error,
    )


#: Public name for single-cell execution — the campaign service runs
#: individual cells as jobs through the same code path the ``--jobs``
#: fan-out uses, so a service cell is bit-identical to a CLI cell.
scenario_cell = _scenario_cell


def validate_campaign_config(
    rates: Optional[Dict[str, float]],
    policy: ResiliencePolicy,
    devices: int = 1,
) -> None:
    """Reject rate/policy combinations the device context cannot honour.

    Every error names the offending key exactly as the user wrote it —
    including its ``devK:`` scope — so a multi-site plan cannot hide a
    bad device-scoped key behind a zero rate or a fleet-wide default.
    """
    if devices < 1:
        raise ValueError(f"device count must be >= 1, got {devices}")
    for key in sorted(rates or {}):
        dev_index, rest = split_device_key(key)
        site = rest.partition(":")[0]
        if dev_index is not None and dev_index >= devices:
            raise ValueError(
                f"fault rate key {key!r} targets device dev{dev_index}, but "
                f"the campaign runs {devices} device(s) (numbered dev0.."
                f"dev{devices - 1}); raise --devices or drop the key"
            )
        if (
            site == "device"
            and rates[key] > 0.0
            and devices == 1
            and policy.checkpoint_interval <= 0
        ):
            raise ValueError(
                f"rate key {key!r} schedules device resets but the "
                f"single-device policy has checkpointing disabled; set "
                f"checkpoint_interval > 0 (e.g. --policy "
                f"checkpoint_interval=4) so resets are survivable, or run "
                f"with --devices > 1 so failover replaces restart"
            )
    if (
        devices > 1
        and policy.backoff_max is not None
        and policy.backoff_max > PROBE_SEMANTICS.cost
    ):
        raise ValueError(
            f"backoff_max ({policy.backoff_max}) must not exceed the fleet's "
            f"re-admission probe cost ({PROBE_SEMANTICS.cost}) when running "
            f"with --devices {devices}: a retry pause longer than a probe "
            f"round trip starves the scheduler's health checks"
        )


def run_campaign(
    names: Optional[List[str]] = None,
    scenarios: int = 3,
    seed: int = 0,
    variant: str = "opt",
    engine: Optional[str] = None,
    rates: Optional[Dict[str, float]] = None,
    policy: Optional[ResiliencePolicy] = None,
    tracer_factory=None,
    jobs: int = 1,
    devices: int = 1,
) -> CampaignResult:
    """Run the fault campaign; returns outcomes for every cell.

    *tracer_factory*, when given, is called as ``factory(name, scenario)``
    per fault scenario and may return a :class:`repro.obs.Tracer`; the
    scenario then runs instrumented (fault firings and recovery actions
    become trace events).  Baseline runs are never traced.

    *devices* > 1 runs every scenario (and its baseline) on a simulated
    multi-card fleet with device-loss failover; device-scoped rate keys
    (``dev0:device``) are validated against the fleet size up front.

    *jobs* > 1 fans scenario cells out over a process pool.  Every
    cell's fault plan is seeded by :func:`scenario_seed` — a pure
    function of the campaign seed and the cell coordinates — and
    outcomes are collected in submission order, so the summary is
    byte-identical regardless of worker count.  ``KeyboardInterrupt`` or
    a worker crash cancels the outstanding cells and returns the
    completed prefix with :attr:`CampaignResult.partial` set.  Tracing
    is incompatible with fan-out (tracers cannot cross processes).

    The import of the workload registry is deferred so the faults
    package stays importable from the runtime layer without cycles.
    """
    from repro.workloads.suite import workload_names

    names = list(names) if names else workload_names()
    policy = policy or ResiliencePolicy()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1 and tracer_factory is not None:
        raise ValueError(
            "campaign tracing requires --jobs 1: tracers record in-process "
            "and cannot be merged back from pool workers"
        )
    validate_campaign_config(rates, policy, devices)
    result = CampaignResult(
        seed=seed, scenarios=scenarios, variant=variant, engine=engine,
        devices=devices, policy=policy,
    )
    cells = [(name, k) for name in names for k in range(scenarios)]
    if jobs == 1:
        for name, k in cells:
            tracer = (
                tracer_factory(name, k) if tracer_factory is not None else None
            )
            result.outcomes.append(
                _scenario_cell(
                    name, k, seed, variant, engine, rates, policy, tracer,
                    devices,
                )
            )
        return result

    pool = _POOL_CLS(max_workers=jobs)
    try:
        futures = [
            pool.submit(
                _scenario_cell, name, k, seed, variant, engine, rates, policy,
                None, devices,
            )
            for name, k in cells
        ]
        # Collect in submission order — the same order the sequential
        # path appends — so worker count never reorders the summary.
        for future in futures:
            result.outcomes.append(future.result())
    except (KeyboardInterrupt, BrokenExecutor):
        # A dead worker (or the user's ^C) would otherwise leave the
        # remaining futures running/queued forever; cancel them and
        # report what finished as an explicitly partial campaign.
        pool.shutdown(wait=False, cancel_futures=True)
        result.partial = True
        return result
    finally:
        if not result.partial:
            pool.shutdown(wait=True, cancel_futures=False)
    return result
