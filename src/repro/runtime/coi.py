"""COI-like low-level offload runtime.

The paper drops below LEO for thread reuse: "In our implementation, we use
lower-level COI library to control the synchronization between CPU and
MIC."  This module is that layer for the simulated machine: device buffer
management, DMA transfers (sync and async), kernel launches with launch
overhead, the persistent-kernel signal fast path, and named signals for
``signal``/``wait`` clauses.

Data movement is performed eagerly on the numpy buffers (program order
equals issue order in our interpreter), while *timing* is scheduled on the
shared :class:`~repro.hardware.event_sim.Timeline`, so transfer/compute
overlap shows up in simulated time without affecting correctness.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.errors import OffloadTimeout, RuntimeFault
from repro.hardware.event_sim import Clock, Event, Timeline
from repro.hardware.memory import DeviceMemoryManager
from repro.hardware.pcie import dma_transfer_time, transfer_breakdown
from repro.hardware.spec import MachineSpec
from repro.obs.tracer import NULL_TRACER
from repro.runtime.values import DeviceSpace, HostSpace

DMA_TO_DEVICE = "dma:h2d"
DMA_FROM_DEVICE = "dma:d2h"
DEVICE = "mic"
HOST = "cpu"


@dataclass
class CoiStats:
    """Counters the experiment harness reports."""

    bytes_to_device: float = 0.0
    bytes_from_device: float = 0.0
    transfers_to_device: int = 0
    transfers_from_device: int = 0
    kernel_launches: int = 0
    kernel_signals: int = 0
    allocations: int = 0
    #: Pure kernel compute time, excluding launch/signal overheads.
    kernel_compute_seconds: float = 0.0


class CoiRuntime:
    """Low-level runtime bound to one simulated machine."""

    def __init__(
        self,
        spec: MachineSpec,
        timeline: Timeline,
        clock: Clock,
        device_memory: DeviceMemoryManager,
        host: HostSpace,
        device: DeviceSpace,
        scale: float = 1.0,
        tracer=None,
    ):
        self.spec = spec
        self.timeline = timeline
        self.clock = clock
        self.device_memory = device_memory
        self.host = host
        self.device = device
        self.scale = scale
        #: Observability sink; the null tracer makes every hook a no-op.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = CoiStats()
        self.signals: Dict[object, List[Event]] = {}
        self._persistent_live: set = set()
        #: Optional fault-injection hooks, attached by the Machine when a
        #: fault plan is configured.  Both None ⇒ the original code paths
        #: run unchanged (bit-identical timing and counters).
        self.injector = None
        self.resilience = None
        self.fault_stats = None
        #: COI session epoch: bumped by every full device reset.  Signals
        #: and persistent sessions belong to an epoch and do not survive
        #: into the next one.
        self.epoch = 0
        #: Optional checkpoint manager (attached by the Machine when the
        #: policy enables checkpoint/restart).  None ⇒ every note hook
        #: below is skipped and a device reset is unrecoverable.
        self.checkpoint = None
        #: Optional integrity manager (attached by the Machine when a
        #: fault plan or a verifying ``integrity_mode`` is configured).
        #: None ⇒ no silent-corruption injection and no verification.
        self.integrity = None
        #: Optional :class:`~repro.runtime.fleet.DeviceFleet` (attached by
        #: the Machine when ``devices > 1``).  None ⇒ the single-device
        #: code paths run unchanged, bit for bit.
        self.fleet = None
        #: True once every fleet device has been evicted and the policy's
        #: host fallback took over: data ops stay eager (correctness) but
        #: schedule nothing and charge nothing device-side — the executor
        #: charges host re-execution per offload instead.
        self.fallback_mode = False

    # -- fleet routing -------------------------------------------------------

    @property
    def active_device_index(self) -> Optional[int]:
        """Index of the device executing the current block (fleet only)."""
        if self.fleet is not None and self.fleet.active is not None:
            return self.fleet.active.index
        return None

    @property
    def active_device_id(self) -> Optional[str]:
        """``devK`` id of the device executing the current block."""
        if self.fleet is not None and self.fleet.active is not None:
            return self.fleet.active.device_id
        return None

    def device_index_of(self, name: str) -> Optional[int]:
        """Index of the device owning buffer *name* (None single-device)."""
        if self.fleet is None:
            return None
        owner = self.fleet.owner_of(name)
        return None if owner is None else owner.index

    def active_memory(self) -> DeviceMemoryManager:
        """The memory manager device-side allocations currently land in."""
        if self.fleet is None:
            return self.device_memory
        if self.fleet.active is not None:
            return self.fleet.active.memory
        healthy = self.fleet.healthy_devices()
        return (healthy[0] if healthy else self.fleet.devices[0]).memory

    def resident_device_bytes(self) -> int:
        """Simulated bytes resident device-side (whole fleet when present)."""
        if self.fallback_mode:
            return 0
        if self.fleet is not None:
            return self.fleet.resident_bytes()
        return self.device_memory.resident_bytes()

    def _device_track(self) -> str:
        """Compute track of the device executing the current block."""
        if self.fleet is not None and self.fleet.active is not None:
            return self.fleet.active.compute_track
        return DEVICE

    def _scoped_persistent_key(self, key: Optional[str]) -> Optional[str]:
        """Persistent sessions live on one card: scope the key to it."""
        if key is None or self.fleet is None or self.fleet.active is None:
            return key
        return f"{self.fleet.active.device_id}:{key}"

    @property
    def live_persistent_sessions(self) -> int:
        """Persistent kernel sessions currently resident on the fleet."""
        return len(self._persistent_live)

    def drop_persistent_sessions(self, prefix: str) -> None:
        """Kill every persistent session whose key starts with *prefix*."""
        self._persistent_live = {
            key for key in self._persistent_live if not key.startswith(prefix)
        }

    def enter_fallback_mode(self) -> None:
        """Switch to host-only execution after fleet exhaustion.

        Correctness continues on the shared numpy buffers; injection and
        checkpointing stop (there is no device left to fail or restore),
        while the integrity manager stays attached so its reference
        checksums keep tracking the buffers it will verify at finalize.
        """
        self.fallback_mode = True
        self.injector = None
        self.checkpoint = None

    def injector_suspended(self):
        """Context manager silencing injection while recovery re-issues."""
        if self.injector is None:
            return nullcontext()
        return self.injector.suspended()

    # -- buffers ------------------------------------------------------------

    def alloc_buffer(
        self,
        name: str,
        count: int,
        dtype=np.float32,
        account_elems: Optional[int] = None,
    ) -> np.ndarray:
        """Allocate (or reuse) a device buffer of *count* elements.

        *account_elems* caps the simulated-memory charge below the numpy
        buffer size: a demoted (streamed) offload keeps the full array for
        correctness but only holds ``account_elems`` resident on the
        simulated device at any instant.
        """
        itemsize = np.dtype(dtype).itemsize
        charged = count if account_elems is None else min(account_elems, count)
        if self.fallback_mode:
            pass  # no device memory left to charge; host arrays only
        elif self.fleet is not None:
            owner = self.fleet.device_for_alloc(name)
            owner.memory.allocate(name, charged * itemsize)
            self.fleet.note_alloc(name, owner, charged * itemsize)
        else:
            self.device_memory.allocate(name, charged * itemsize)
        existing = self.device.arrays.get(name)
        if existing is None or len(existing) < count or existing.dtype != dtype:
            if existing is not None and self.integrity is not None:
                # The old array object (and its contents) is dropped:
                # settle its checksum state before it goes.
                self.integrity.on_realloc(self, name)
            self.device.arrays[name] = np.zeros(count, dtype=dtype)
        self.stats.allocations += 1
        if self.checkpoint is not None:
            self.checkpoint.note_alloc(name, charged * itemsize)
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("coi.allocations").inc()
            if self.fleet is not None:
                metrics.gauge("device.mem_in_use").set(self.fleet.resident_bytes())
                metrics.gauge("device.mem_peak").set(self.fleet.peak_bytes())
            else:
                metrics.gauge("device.mem_in_use").set(self.device_memory.in_use)
                metrics.gauge("device.mem_peak").set(self.device_memory.peak)
        return self.device.arrays[name]

    def free_buffer(self, name: str) -> None:
        """Free the device buffer and its memory accounting."""
        if self.integrity is not None and name in self.device.arrays:
            self.integrity.on_free(self, name)
        if self.fallback_mode:
            pass  # device-side accounting already gone with the fleet
        elif self.fleet is not None:
            owner = self.fleet.owner_of(name)
            if owner is not None and owner.memory.holds(name):
                owner.memory.free(name)
            self.fleet.note_free(name)
        elif self.device_memory.holds(name):
            self.device_memory.free(name)
        self.device.arrays.pop(name, None)
        if self.checkpoint is not None:
            self.checkpoint.note_free(name)

    # -- transfers ------------------------------------------------------------

    def _trace_dma(
        self,
        channel: str,
        label: str,
        event: Event,
        duration: float,
        nbytes: float,
        status: str = "ok",
    ) -> None:
        """Record one scheduled DMA operation as a span (tracing only).

        The operation occupies its channel contiguously for *duration*,
        so the span start is the completion time minus the duration.
        """
        attrs = transfer_breakdown(nbytes, self.spec.pcie)
        attrs["status"] = status
        self.tracer.span(label, channel, event.time - duration, event.time, **attrs)
        # Fleet channels are prefixed ("dev2:dma:h2d"), so the site is
        # identified by suffix, not equality.
        site = "h2d" if channel.endswith(DMA_TO_DEVICE) else "d2h"
        self.tracer.metrics.histogram(f"coi.dma.{site}.seconds").observe(duration)

    def _dma_schedule(
        self,
        channel: str,
        duration: float,
        deps: Iterable[Event],
        label: str,
        block: bool = False,
        nbytes: float = 0.0,
        device: Optional[int] = None,
    ) -> Event:
        """Schedule one DMA transfer, surviving injected link faults.

        Without an injector this is exactly one timeline schedule — the
        pre-fault code path, bit for bit.  With one, a faulted attempt
        (corrupt payload or stalled engine) burns simulated channel time,
        the host detects it and retries after exponential backoff; a
        transfer that exhausts its retries is pushed through at the
        policy's degraded link rate rather than lost.  *block* marks a
        sectioned (block-granular) transfer, whose replays are what the
        streaming restart counter reports.
        """
        tracer = self.tracer
        if self.injector is None:
            event = self.timeline.schedule(
                channel, duration, deps=deps, label=label,
                not_before=self.clock.now,
            )
            if tracer.enabled:
                self._trace_dma(channel, label, event, duration, nbytes)
            return event
        site = "h2d" if channel.endswith(DMA_TO_DEVICE) else "d2h"
        policy = self.resilience
        stats = self.fault_stats
        attempt = 0
        while True:
            fault = self.injector.draw(site, device=device)
            if fault is None:
                event = self.timeline.schedule(
                    channel, duration, deps=deps, label=label,
                    not_before=self.clock.now,
                )
                if tracer.enabled:
                    self._trace_dma(channel, label, event, duration, nbytes)
                return event
            if fault.kind == "stall":
                # Engine wedged mid-transfer; host watchdog fires.
                wasted = duration * fault.severity + policy.transfer_timeout
                stats.timeouts += 1
            else:
                # Corruption is detected after the full transfer lands.
                wasted = duration
            failed = self.timeline.schedule(
                channel, wasted, deps=deps, label=f"{label}!{fault.kind}",
                not_before=self.clock.now,
            )
            self.clock.wait_until(failed)
            stats.recovery_seconds += wasted
            if block:
                stats.blocks_replayed += 1
            if tracer.enabled:
                self._trace_dma(
                    channel, f"{label}!{fault.kind}", failed, wasted, nbytes,
                    status=fault.kind,
                )
            if attempt >= policy.max_retries:
                stats.degraded_transfers += 1
                stats.record_action(site, "degraded")
                event = self.timeline.schedule(
                    channel, duration * policy.degraded_factor, deps=deps,
                    label=f"{label}~degraded", not_before=self.clock.now,
                )
                if tracer.enabled:
                    self._trace_dma(
                        channel, f"{label}~degraded", event,
                        duration * policy.degraded_factor, nbytes,
                        status="degraded",
                    )
                    tracer.instant(
                        "recovery:degraded", self.clock.now, track=channel,
                        site=site, label=label,
                    )
                    tracer.metrics.counter("faults.degraded_transfers").inc()
                return event
            pause = policy.backoff(attempt)
            self.clock.advance(pause)
            stats.backoff_seconds += pause
            stats.retries += 1
            stats.record_action(site, "retry")
            if tracer.enabled:
                tracer.instant(
                    "recovery:retry", self.clock.now, track=channel,
                    site=site, attempt=attempt, backoff=pause, label=label,
                )
                tracer.metrics.counter("faults.retries").inc()
            attempt += 1

    def write_buffer(
        self,
        dest: str,
        dest_start: int,
        data: np.ndarray,
        deps: Iterable[Event] = (),
        sync: bool = True,
        block: bool = False,
    ) -> Event:
        """Copy host *data* into device buffer *dest* at *dest_start*.

        The copy happens immediately (issue order is program order); the
        DMA time is scheduled on the host-to-device channel.  When *sync*
        the host clock blocks on completion, otherwise the returned event
        is the dependency later operations use.
        """
        buf = self.device.array(dest)
        if dest_start < 0 or dest_start + len(data) > len(buf):
            raise RuntimeFault(
                f"h2d transfer into buffer {dest!r} out of range: "
                f"[{dest_start}, {dest_start + len(data)}) of {len(buf)}"
            )
        buf[dest_start : dest_start + len(data)] = data
        if self.checkpoint is not None:
            self.checkpoint.note_write(dest, dest_start, len(data), data.nbytes)
        if self.integrity is not None:
            self.integrity.on_write(self, dest, dest_start, len(data))
        if self.fallback_mode:
            # Host-only: the eager copy above is the whole operation.
            return Event(self.clock.now, f"h2d:{dest}")
        channel, device = DMA_TO_DEVICE, None
        if self.fleet is not None:
            owner = self.fleet.device_for_alloc(dest)
            channel, device = owner.h2d_track, owner.index
        nbytes = data.nbytes * self.scale
        event = self._dma_schedule(
            channel,
            dma_transfer_time(nbytes, self.spec.pcie),
            deps=deps,
            label=f"h2d:{dest}",
            block=block,
            nbytes=nbytes,
            device=device,
        )
        self.stats.bytes_to_device += nbytes
        self.stats.transfers_to_device += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("coi.bytes_to_device").inc(nbytes)
            metrics.counter("coi.transfers_to_device").inc()
        if sync:
            self.clock.wait_until(event)
        return event

    def read_buffer(
        self,
        src: str,
        src_start: int,
        count: int,
        into: np.ndarray,
        into_start: int,
        deps: Iterable[Event] = (),
        sync: bool = True,
        block: bool = False,
    ) -> Event:
        """Copy *count* elements of device buffer *src* back to host."""
        buf = self.device.array(src)
        if src_start < 0 or src_start + count > len(buf):
            raise RuntimeFault(
                f"d2h transfer from buffer {src!r} out of range: "
                f"[{src_start}, {src_start + count}) of {len(buf)}"
            )
        into[into_start : into_start + count] = buf[src_start : src_start + count]
        if self.integrity is not None:
            self.integrity.on_read(self, src, src_start, count, into, into_start)
        if self.fallback_mode:
            return Event(self.clock.now, f"d2h:{src}")
        channel, device = DMA_FROM_DEVICE, None
        if self.fleet is not None:
            owner = self.fleet.device_for_alloc(src)
            channel, device = owner.d2h_track, owner.index
        nbytes = count * buf.dtype.itemsize * self.scale
        event = self._dma_schedule(
            channel,
            dma_transfer_time(nbytes, self.spec.pcie),
            deps=deps,
            label=f"d2h:{src}",
            block=block,
            nbytes=nbytes,
            device=device,
        )
        self.stats.bytes_from_device += nbytes
        self.stats.transfers_from_device += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("coi.bytes_from_device").inc(nbytes)
            metrics.counter("coi.transfers_from_device").inc()
        if sync:
            self.clock.wait_until(event)
        return event

    def raw_transfer(
        self,
        nbytes: float,
        to_device: bool,
        deps: Iterable[Event] = (),
        sync: bool = True,
        label: str = "raw",
        block: bool = False,
        channel: Optional[str] = None,
        device: Optional[int] = None,
    ) -> Event:
        """Schedule transfer time without touching named buffers.

        Used by the shared-memory runtimes, whose data lives in arena /
        page objects rather than named numpy buffers, and by the recovery
        paths (*channel* pins the transfer to a specific fleet device's
        DMA engine; by default it rides the active device's channel).
        """
        if self.fallback_mode:
            return Event(self.clock.now, label)
        if channel is None:
            if self.fleet is not None and self.fleet.active is not None:
                active = self.fleet.active
                channel = active.h2d_track if to_device else active.d2h_track
                if device is None:
                    device = active.index
            else:
                channel = DMA_TO_DEVICE if to_device else DMA_FROM_DEVICE
        event = self._dma_schedule(
            channel,
            dma_transfer_time(nbytes * self.scale, self.spec.pcie),
            deps=deps,
            label=label,
            block=block,
            nbytes=nbytes * self.scale,
            device=device,
        )
        if to_device:
            self.stats.bytes_to_device += nbytes * self.scale
            self.stats.transfers_to_device += 1
        else:
            self.stats.bytes_from_device += nbytes * self.scale
            self.stats.transfers_from_device += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            direction = "to" if to_device else "from"
            metrics.counter(f"coi.bytes_{direction}_device").inc(nbytes * self.scale)
            metrics.counter(f"coi.transfers_{direction}_device").inc()
        if sync:
            self.clock.wait_until(event)
        return event

    # -- kernels ---------------------------------------------------------------

    def launch_kernel(
        self,
        duration: float,
        deps: Iterable[Event] = (),
        label: str = "kernel",
        persistent_key: Optional[str] = None,
    ) -> Event:
        """Run device work of *duration* seconds (already scaled).

        A fresh launch pays the LEO/COI kernel launch overhead K.  With a
        *persistent_key*, only the first launch pays K; subsequent work
        under the same key pays the much smaller signal overhead — the
        thread-reuse optimization of Section III-C.  In a fleet the work
        lands on the active device's own compute track, and persistent
        sessions are scoped to that card (a session cannot follow a block
        to a different device).
        """
        if self.fallback_mode:
            return Event(self.clock.now, label)
        track = self._device_track()
        key = self._scoped_persistent_key(persistent_key)
        if self.injector is None:
            overhead = self._launch_overhead(key)
            self.stats.kernel_compute_seconds += duration
            event = self.timeline.schedule(
                track,
                overhead + duration,
                deps=deps,
                label=label,
                not_before=self.clock.now,
            )
            if self.tracer.enabled:
                self._trace_kernel(label, event, overhead, duration, track=track)
            return event
        return self._launch_kernel_resilient(duration, deps, label, key, track)

    def _launch_overhead(self, persistent_key: Optional[str]) -> float:
        """Overhead of the next launch, counted in the stats."""
        mic = self.spec.mic
        metrics = self.tracer.metrics
        if persistent_key is None:
            self.stats.kernel_launches += 1
            metrics.counter("coi.kernel_launches").inc()
            return mic.kernel_launch_overhead
        if persistent_key not in self._persistent_live:
            self._persistent_live.add(persistent_key)
            self.stats.kernel_launches += 1
            metrics.counter("coi.kernel_launches").inc()
            return mic.kernel_launch_overhead
        self.stats.kernel_signals += 1
        metrics.counter("coi.kernel_signals").inc()
        return mic.signal_overhead

    def _trace_kernel(
        self,
        label: str,
        event: Event,
        overhead: float,
        duration: float,
        status: str = "ok",
        track: str = DEVICE,
    ) -> None:
        """Record one kernel occupancy as a device-track span."""
        total = overhead + duration
        self.tracer.span(
            label, track, event.time - total, event.time,
            overhead=overhead, compute=duration, status=status,
        )
        metrics = self.tracer.metrics
        metrics.histogram("coi.kernel_compute_seconds").observe(duration)
        metrics.histogram("coi.kernel_launch_overhead_seconds").observe(overhead)

    def _launch_kernel_resilient(
        self,
        duration: float,
        deps: Iterable[Event],
        label: str,
        persistent_key: Optional[str],
        track: str = DEVICE,
    ) -> Event:
        """Launch under fault injection: crashes and hangs are retried.

        A hung kernel burns the watchdog timeout; a crashed one burns the
        severity-fraction of its runtime.  Either way a persistent session
        dies with the kernel, so the retry pays a full launch.  When the
        retry budget is exhausted the offload is abandoned with
        :class:`OffloadTimeout` — the executor decides whether the policy
        allows falling back to the host.
        """
        policy = self.resilience
        stats = self.fault_stats
        device = self.active_device_index
        attempt = 0
        while True:
            fault = self.injector.draw("kernel", device=device)
            if fault is None:
                overhead = self._launch_overhead(persistent_key)
                self.stats.kernel_compute_seconds += duration
                event = self.timeline.schedule(
                    track,
                    overhead + duration,
                    deps=deps,
                    label=label,
                    not_before=self.clock.now,
                )
                if self.tracer.enabled:
                    self._trace_kernel(
                        label, event, overhead, duration, track=track
                    )
                return event
            overhead = self._launch_overhead(persistent_key)
            if fault.kind == "hang":
                wasted = overhead + policy.kernel_timeout
                stats.timeouts += 1
            else:
                wasted = overhead + duration * fault.severity
            failed = self.timeline.schedule(
                track,
                wasted,
                deps=deps,
                label=f"{label}!{fault.kind}",
                not_before=self.clock.now,
            )
            self.clock.wait_until(failed)
            stats.recovery_seconds += wasted
            if self.tracer.enabled:
                self.tracer.span(
                    f"{label}!{fault.kind}", track,
                    failed.time - wasted, failed.time,
                    status=fault.kind,
                )
            if persistent_key is not None:
                self._persistent_live.discard(persistent_key)
            if attempt >= policy.max_retries:
                raise OffloadTimeout(
                    f"offload kernel {label!r} abandoned after "
                    f"{attempt + 1} attempts (last fault: {fault.kind})"
                )
            pause = policy.backoff(attempt)
            self.clock.advance(pause)
            stats.backoff_seconds += pause
            stats.retries += 1
            stats.record_action("kernel", "retry")
            if self.tracer.enabled:
                self.tracer.instant(
                    "recovery:retry", self.clock.now, track=track,
                    site="kernel", attempt=attempt, backoff=pause, label=label,
                )
                self.tracer.metrics.counter("faults.retries").inc()
            attempt += 1

    def end_persistent(self, key: str) -> None:
        """Terminate a persistent kernel (next use pays a full launch)."""
        self._persistent_live.discard(key)
        if self.fleet is not None:
            # The session may live on any card (scoped key).
            for dev in self.fleet.devices:
                self._persistent_live.discard(f"{dev.device_id}:{key}")

    # -- device reset -----------------------------------------------------------

    def reset_device(self) -> None:
        """Wipe every piece of resident device state (a full reset).

        Resident numpy buffers, device scalars, in-flight signals,
        persistent kernel sessions, and the memory accounting all go;
        the session epoch is bumped so state rebuilt afterwards is
        distinguishable from pre-reset state.  The caller (the
        checkpoint manager's restore path) is responsible for rebuilding
        whatever must survive — this method only destroys.
        """
        self.device.arrays.clear()
        self.device.scalars.clear()
        self.signals.clear()
        self._persistent_live.clear()
        self.device_memory.reset()
        self.epoch += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("coi.device_resets").inc()
            metrics.gauge("coi.epoch").set(self.epoch)
            metrics.gauge("device.mem_in_use").set(self.device_memory.in_use)

    # -- signals -----------------------------------------------------------------

    def post_signal(self, tag: object, events: Iterable[Event]) -> None:
        """Record completion events under *tag* for a later wait."""
        self.signals.setdefault(tag, []).extend(events)

    def take_signal(self, tag: object) -> List[Event]:
        """Pop the events posted under *tag*, surviving a lost signal.

        An injected "lost" fault models a dropped completion notification:
        the waiter times out and re-polls the signal word, which costs the
        policy's signal timeout but still observes the posted events.
        """
        events = self.signals.pop(tag, [])
        if events and self.injector is not None:
            fault = self.injector.draw("signal")
            if fault is not None:
                policy = self.resilience
                stats = self.fault_stats
                stats.signals_lost += 1
                stats.timeouts += 1
                stats.record_action("signal", "repoll")
                self.clock.advance(policy.signal_timeout)
                stats.recovery_seconds += policy.signal_timeout
                if self.tracer.enabled:
                    self.tracer.instant(
                        "recovery:signal-repoll", self.clock.now,
                        track=HOST, tag=str(tag),
                        timeout=policy.signal_timeout,
                    )
                    self.tracer.metrics.counter("faults.signals_lost").inc()
        return events

    def wait_signal(self, tag: object) -> None:
        """Block the host until everything posted under *tag* completes."""
        for event in self.take_signal(tag):
            self.clock.wait_until(event)
