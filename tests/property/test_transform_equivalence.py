"""Property-based transform correctness: optimized == original, always.

Generates random offloadable parallel-loop programs (affine accesses,
optional offsets, reductions, guards, multiple statements), runs the COMP
pipeline on them, and asserts the optimized program computes bit-identical
outputs on the simulated machine.  This is the reproduction's strongest
safety net: any legality-check hole or clause mistake the generator can
reach shows up as an output mismatch.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.streaming import StreamingOptions

N = 64  # array size used by every generated program

# -- body statement generators ------------------------------------------------

_in_arrays = st.sampled_from(["A", "B"])
_out_arrays = st.sampled_from(["C", "D"])
_offsets = st.integers(min_value=0, max_value=3)
_consts = st.floats(min_value=0.25, max_value=4.0).map(lambda v: round(v, 3))


@st.composite
def _rhs(draw):
    """A right-hand side reading the input arrays at affine indexes."""
    src = draw(_in_arrays)
    off = draw(_offsets)
    term = f"{src}[i + {off}]" if off else f"{src}[i]"
    kind = draw(st.integers(min_value=0, max_value=3))
    c = draw(_consts)
    if kind == 0:
        return f"{term} * {c}"
    if kind == 1:
        src2 = draw(_in_arrays)
        return f"{term} + {src2}[i] * {c}"
    if kind == 2:
        return f"sqrt({term} + {c})"
    return f"{term} > {c} ? {term} : {c}"


@st.composite
def _statement(draw):
    dest = draw(_out_arrays)
    rhs = draw(_rhs())
    return f"{dest}[i] = {rhs};"


@st.composite
def _program(draw):
    stmts = draw(st.lists(_statement(), min_size=1, max_size=4))
    use_reduction = draw(st.booleans())
    red_clause = " reduction(+:acc)" if use_reduction else ""
    body = "\n            ".join(stmts)
    if use_reduction:
        body += "\n            acc += C[i];"
        stmts.append("acc += C[i];")
    source = f"""
void main() {{
    float acc = 0.0;
#pragma offload target(mic:0) in(A : length(n + 3)) in(B : length(n + 3)) in(n) inout(C : length(n)) inout(D : length(n)) inout(acc)
#pragma omp parallel for{red_clause}
    for (int i = 0; i < n; i++) {{
        {body}
    }}
    total = acc;
}}
"""
    return source


def _arrays():
    rng = np.random.default_rng(1234)
    return {
        "A": (rng.random(N + 3) + 0.5).astype(np.float32),
        "B": (rng.random(N + 3) + 0.5).astype(np.float32),
        "C": np.zeros(N, dtype=np.float32),
        "D": np.zeros(N, dtype=np.float32),
    }


def _run(program_or_source):
    return run_program(
        program_or_source,
        arrays=_arrays(),
        scalars={"n": N},
        machine=Machine(scale=50.0),
    )


class TestOptimizedEquivalence:
    @given(_program(), st.sampled_from([3, 7, 20]), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_streaming_preserves_outputs(self, source, blocks, double_buffer):
        baseline = _run(source)
        program = parse(source)
        CompOptimizer(
            OptimizationPlan(
                streaming_options=StreamingOptions(
                    num_blocks=blocks, double_buffer=double_buffer
                )
            )
        ).optimize(program)
        optimized = _run(program)
        for name in ("C", "D"):
            assert np.array_equal(
                baseline.array(name), optimized.array(name)
            ), f"{name} diverged:\n{source}"
        assert baseline.scalar("total") == optimized.scalar("total")

    @given(_program())
    @settings(max_examples=20, deadline=None)
    def test_optimizer_helps_at_paper_scale(self, source):
        """At realistic input sizes the pipeline never regresses.

        (At tiny sizes a fixed block count CAN regress — per-block DMA
        latency and signals exceed the hidden transfer time — which is
        precisely why Section III-B derives the optimal N from D, C and
        K; see test_tiny_scale_regression_and_autotune_rescue.)
        """
        def run_at_scale(program_or_source):
            return run_program(
                program_or_source,
                arrays=_arrays(),
                scalars={"n": N},
                machine=Machine(scale=5.0e4),
            )

        baseline = run_at_scale(source)
        program = parse(source)
        CompOptimizer().optimize(program)
        optimized = run_at_scale(program)
        # Bounded: blocking overheads (overlap-region re-transfers, the
        # first block's latency) can cost a few percent on compute-bound
        # programs, never more.
        assert optimized.stats.total_time <= baseline.stats.total_time * 1.10
        # And when transfer dominated the baseline, streaming must win.
        if baseline.stats.transfer_time > 2 * baseline.stats.device_compute_time:
            assert optimized.stats.total_time < baseline.stats.total_time


class TestTinyScaleRegression:
    SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(C : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        C[i] = A[i] * 1.5;
    }
}
"""

    def test_tiny_scale_regression_and_autotune_rescue(self):
        """Fixed N=20 regresses a tiny offload; the profile-guided model
        picks a small N and stays at least launch-overhead-neutral."""
        from repro.transforms.autotune import profile_offload_costs

        def arrays():
            return {
                "A": np.ones(N, dtype=np.float32),
                "C": np.zeros(N, dtype=np.float32),
            }

        scale = 10.0
        baseline = run_program(
            self.SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=scale),
        ).stats.total_time
        fixed = parse(self.SOURCE)
        CompOptimizer(
            OptimizationPlan(streaming_options=StreamingOptions(num_blocks=20))
        ).optimize(fixed)
        fixed_time = run_program(
            fixed, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=scale),
        ).stats.total_time
        assert fixed_time > baseline  # the documented regression

        profile = profile_offload_costs(
            self.SOURCE, arrays=arrays(), scalars={"n": N},
            machine=Machine(scale=scale),
        )
        assert profile.num_blocks < 20  # the model backs off
