"""Table I: pointer operations on CPU and MIC.

Demonstrates the augmented-pointer semantics live: translation is one
delta-table lookup plus an add, and taking an address on the MIC stores
the CPU address back (so shared pointers always hold CPU addresses).
"""

from benchmarks.conftest import emit
from repro.experiments.report import render_table_data
from repro.experiments.tables import table1_demo


def test_table1_pointer_operations(benchmark):
    data = benchmark.pedantic(table1_demo, rounds=1, iterations=1)
    emit(render_table_data(data))
    assert len(data.rows) == 3
