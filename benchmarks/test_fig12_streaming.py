"""Figure 12: performance gains by data streaming alone.

The five streaming benchmarks of Table II, run with only the streaming
stage enabled (merging off).  Paper average: 1.45x.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure12
from repro.experiments.report import render_figure


def test_figure12_streaming_gains(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure12(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    for name, gain in fig.series.items():
        assert gain > 1.05, (name, gain)
    assert 1.2 < fig.average < 2.5  # paper: 1.45x
