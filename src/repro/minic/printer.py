"""AST-to-source printer for MiniC.

``parse(to_source(prog))`` round-trips to a structurally equal AST, which
the test suite checks (including with hypothesis-generated programs).  The
printer is also how transformed programs are inspected: the paper presents
its optimizations as source-to-source rewrites, and our examples print the
before/after code the same way Figure 5 does.
"""

from __future__ import annotations

from typing import List

from repro.minic import ast_nodes as ast

_INDENT = "    "

# Operator precedence for minimal parenthesization, mirroring the parser.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PRECEDENCE = 11


def to_source(node: ast.Node) -> str:
    """Render *node* (a Program, statement, or expression) as source text."""
    printer = _Printer()
    if isinstance(node, ast.Program):
        return printer.print_program(node)
    if isinstance(node, ast.Stmt):
        printer._stmt(node, 0)
        return "\n".join(printer.lines) + "\n"
    if isinstance(node, ast.Expr):
        return printer._expr(node)
    if isinstance(node, ast.Pragma):
        return printer._pragma(node)
    if isinstance(node, (ast.FuncDef, ast.StructDef, ast.GlobalDecl)):
        printer._decl(node)
        return "\n".join(printer.lines) + "\n"
    raise TypeError(f"cannot print {type(node).__name__}")


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    # -- top level -----------------------------------------------------------

    def print_program(self, prog: ast.Program) -> str:
        for i, decl in enumerate(prog.decls):
            if i:
                self.lines.append("")
            self._decl(decl)
        return "\n".join(self.lines) + "\n"

    def _decl(self, decl: ast.Node) -> None:
        if isinstance(decl, ast.StructDef):
            self.lines.append(f"struct {decl.name} {{")
            for field in decl.fields_:
                self.lines.append(f"{_INDENT}{self._declarator(field.type, field.name)};")
            self.lines.append("};")
        elif isinstance(decl, ast.FuncDef):
            params = ", ".join(
                self._declarator(p.type, p.name) for p in decl.params
            ) or "void"
            header = f"{self._declarator(decl.return_type, decl.name)}({params})"
            if decl.body is None:
                self.lines.append(header + ";")
            else:
                self.lines.append(header + " {")
                for stmt in decl.body.stmts:
                    self._stmt(stmt, 1)
                self.lines.append("}")
        elif isinstance(decl, ast.GlobalDecl):
            self.lines.append(self._var_decl(decl.decl) + ";")
        else:
            raise TypeError(f"cannot print declaration {type(decl).__name__}")

    # -- types -----------------------------------------------------------------

    def _declarator(self, typ: ast.Type, name: str) -> str:
        """Render ``typ name`` with C declarator syntax."""
        suffix = ""
        while isinstance(typ, ast.ArrayType):
            size = "" if typ.size is None else self._expr(typ.size)
            suffix += f"[{size}]"
            typ = typ.base
        stars = ""
        while isinstance(typ, ast.PointerType):
            stars += "*"
            typ = typ.base
        return f"{typ}{' ' if name or stars else ''}{stars}{name}{suffix}"

    def _type(self, typ: ast.Type) -> str:
        return self._declarator(typ, "")

    # -- statements ---------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt, depth: int) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, ast.VarDecl):
            self.lines.append(pad + self._var_decl(stmt) + ";")
        elif isinstance(stmt, ast.Assign):
            self.lines.append(
                f"{pad}{self._expr(stmt.target)} {stmt.op} {self._expr(stmt.value)};"
            )
        elif isinstance(stmt, ast.ExprStmt):
            self.lines.append(pad + self._expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.Block):
            self.lines.append(pad + "{")
            for inner in stmt.stmts:
                self._stmt(inner, depth + 1)
            self.lines.append(pad + "}")
        elif isinstance(stmt, ast.If):
            self.lines.append(f"{pad}if ({self._expr(stmt.cond)}) {{")
            self._body_stmts(stmt.then, depth)
            if stmt.other is not None:
                self.lines.append(pad + "} else {")
                self._body_stmts(stmt.other, depth)
            self.lines.append(pad + "}")
        elif isinstance(stmt, ast.For):
            for pragma in stmt.pragmas:
                self.lines.append(pad + "#pragma " + self._pragma(pragma))
            init = self._inline_stmt(stmt.init)
            cond = "" if stmt.cond is None else self._expr(stmt.cond)
            step = self._inline_stmt(stmt.step)
            self.lines.append(f"{pad}for ({init}; {cond}; {step}) {{")
            self._body_stmts(stmt.body, depth)
            self.lines.append(pad + "}")
        elif isinstance(stmt, ast.While):
            self.lines.append(f"{pad}while ({self._expr(stmt.cond)}) {{")
            self._body_stmts(stmt.body, depth)
            self.lines.append(pad + "}")
        elif isinstance(stmt, ast.DoWhile):
            self.lines.append(pad + "do {")
            self._body_stmts(stmt.body, depth)
            self.lines.append(f"{pad}}} while ({self._expr(stmt.cond)});")
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.lines.append(pad + "return;")
            else:
                self.lines.append(f"{pad}return {self._expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.lines.append(pad + "break;")
        elif isinstance(stmt, ast.Continue):
            self.lines.append(pad + "continue;")
        elif isinstance(stmt, ast.PragmaStmt):
            self.lines.append(pad + "#pragma " + self._pragma(stmt.pragma))
        elif isinstance(stmt, ast.OffloadBlock):
            self.lines.append(pad + "#pragma " + self._pragma(stmt.pragma))
            self._stmt(stmt.body, depth)
        else:
            raise TypeError(f"cannot print statement {type(stmt).__name__}")

    def _body_stmts(self, body: ast.Stmt, depth: int) -> None:
        """Print the contents of a braced body, flattening a Block."""
        if isinstance(body, ast.Block):
            for inner in body.stmts:
                self._stmt(inner, depth + 1)
        else:
            self._stmt(body, depth + 1)

    def _inline_stmt(self, stmt: object) -> str:
        """Render a for-header init/step statement without the semicolon."""
        if stmt is None:
            return ""
        if isinstance(stmt, ast.VarDecl):
            return self._var_decl(stmt)
        if isinstance(stmt, ast.Assign):
            return f"{self._expr(stmt.target)} {stmt.op} {self._expr(stmt.value)}"
        if isinstance(stmt, ast.ExprStmt):
            return self._expr(stmt.expr)
        raise TypeError(f"cannot inline {type(stmt).__name__}")

    def _var_decl(self, decl: ast.VarDecl) -> str:
        text = self._declarator(decl.type, decl.name)
        if decl.init is not None:
            text += f" = {self._expr(decl.init)}"
        return text

    # -- pragmas -----------------------------------------------------------------

    def _pragma(self, pragma: ast.Pragma) -> str:
        if isinstance(pragma, ast.OmpParallelFor):
            parts = ["omp parallel for"]
            if pragma.private:
                parts.append(f"private({', '.join(pragma.private)})")
            for op, var in pragma.reduction:
                parts.append(f"reduction({op}:{var})")
            if pragma.num_threads is not None:
                parts.append(f"num_threads({self._expr(pragma.num_threads)})")
            if pragma.pipelined:
                parts.append("pipelined(1)")
            return " ".join(parts)
        if isinstance(pragma, ast.OffloadPragma):
            parts = [f"offload target(mic:{pragma.target})"]
            parts.extend(self._clause(c) for c in pragma.clauses)
            if pragma.shared:
                parts.append(f"shared({', '.join(pragma.shared)})")
            if pragma.persistent:
                parts.append("persistent(1)")
            if pragma.session is not None:
                parts.append(f"session({pragma.session})")
            if pragma.signal is not None:
                parts.append(f"signal({self._expr(pragma.signal)})")
            if pragma.wait is not None:
                parts.append(f"wait({self._expr(pragma.wait)})")
            return " ".join(parts)
        if isinstance(pragma, ast.OffloadTransferPragma):
            parts = [f"offload_transfer target(mic:{pragma.target})"]
            parts.extend(self._clause(c) for c in pragma.clauses)
            if pragma.signal is not None:
                parts.append(f"signal({self._expr(pragma.signal)})")
            return " ".join(parts)
        if isinstance(pragma, ast.OffloadWaitPragma):
            return (
                f"offload_wait target(mic:{pragma.target}) "
                f"wait({self._expr(pragma.wait)})"
            )
        raise TypeError(f"cannot print pragma {type(pragma).__name__}")

    def _clause(self, clause: ast.TransferClause) -> str:
        head = clause.var
        if clause.start is not None:
            head += f"[{self._expr(clause.start)}:{self._expr(clause.length)}]"
        mods = []
        if clause.start is None and clause.length is not None:
            mods.append(f"length({self._expr(clause.length)})")
        if clause.into is not None:
            if clause.into_start is not None and clause.length is not None:
                mods.append(
                    f"into({clause.into}[{self._expr(clause.into_start)}"
                    f":{self._expr(clause.length)}])"
                )
            else:
                mods.append(f"into({clause.into})")
        if clause.alloc_if is not None:
            mods.append(f"alloc_if({self._expr(clause.alloc_if)})")
        if clause.free_if is not None:
            mods.append(f"free_if({self._expr(clause.free_if)})")
        body = head if not mods else f"{head} : {' '.join(mods)}"
        return f"{clause.direction}({body})"

    # -- expressions ----------------------------------------------------------------

    def _expr(self, expr: ast.Expr, parent_prec: int = 0) -> str:
        if isinstance(expr, ast.IntLit):
            return str(expr.value)
        if isinstance(expr, ast.FloatLit):
            text = repr(expr.value)
            return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
        if isinstance(expr, ast.StringLit):
            return f'"{expr.value}"'
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.BinOp):
            prec = _PRECEDENCE[expr.op]
            # A left operand context of the lowest binary level ("||")
            # must still force parentheses around a ternary operand, so
            # the context precedence never drops back to 0 (= top level).
            left_ctx = prec - 1 if prec > 1 else 0.5
            left = self._expr(expr.left, left_ctx)
            right = self._expr(expr.right, prec)
            text = f"{left} {expr.op} {right}"
            return f"({text})" if prec <= parent_prec else text
        if isinstance(expr, ast.UnOp):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            text = f"{expr.op}{operand}"
            return f"({text})" if _UNARY_PRECEDENCE <= parent_prec else text
        if isinstance(expr, ast.Subscript):
            return f"{self._expr(expr.base, _UNARY_PRECEDENCE)}[{self._expr(expr.index)}]"
        if isinstance(expr, ast.Member):
            sep = "->" if expr.arrow else "."
            return f"{self._expr(expr.base, _UNARY_PRECEDENCE)}{sep}{expr.field}"
        if isinstance(expr, ast.Call):
            args = ", ".join(self._expr(a) for a in expr.args)
            return f"{expr.func}({args})"
        if isinstance(expr, ast.Cond):
            text = (
                f"{self._expr(expr.cond, 1)} ? {self._expr(expr.then)}"
                f" : {self._expr(expr.other)}"
            )
            return f"({text})" if parent_prec > 0 else text
        if isinstance(expr, ast.Cast):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            text = f"({self._type(expr.type)}){operand}"
            return f"({text})" if _UNARY_PRECEDENCE <= parent_prec else text
        if isinstance(expr, ast.SizeOf):
            return f"sizeof({self._type(expr.type)})"
        raise TypeError(f"cannot print expression {type(expr).__name__}")
