"""Fault injection and recovery: every fault is survived bit-identically.

The simulator decouples correctness (concrete numpy interpretation) from
timing (the event timeline), so injected faults may only ever cost
simulated *time* — outputs must match the fault-free run exactly.  These
tests script individual faults with :class:`FaultSpec` to drive each
recovery path deterministically: transfer retry and degradation, kernel
retry and host fallback, OOM demotion to streaming, and lost signals.
"""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemory, OffloadTimeout
from repro.faults import FaultPlan, FaultSpec, FaultStats, ResiliencePolicy
from repro.hardware.memory import DeviceMemoryManager
from repro.runtime.executor import Machine, run_program
from repro.transforms.streaming import choose_demotion_blocks

OFFLOAD_SRC = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0 + 1.0;
    }
}
"""


def make_arrays(n=256):
    return {
        "A": np.arange(n, dtype=np.float32),
        "B": np.zeros(n, dtype=np.float32),
    }


def run_with(machine, n=256):
    return run_program(
        OFFLOAD_SRC, arrays=make_arrays(n), scalars={"n": n}, machine=machine
    )


def baseline(n=256):
    machine = Machine()
    result = run_with(machine, n)
    return result, machine.clock.now


class TestPlanValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("pcie", 0)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="cannot raise"):
            FaultSpec("kernel", 0, kind="oom")

    def test_unknown_rate_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault sites"):
            FaultPlan(seed=1, rates={"nvlink": 0.5})

    def test_same_seed_same_draws(self):
        a = FaultPlan(seed=7)
        b = FaultPlan(seed=7)
        draws_a = [a.draw("h2d") for _ in range(200)]
        draws_b = [b.draw("h2d") for _ in range(200)]
        assert draws_a == draws_b
        assert any(f is not None for f in draws_a)

    def test_max_faults_caps_emission(self):
        plan = FaultPlan(seed=7, rates={"h2d": 1.0}, max_faults=3)
        faults = [plan.draw("h2d") for _ in range(50)]
        assert sum(f is not None for f in faults) == 3


class TestDisabledPathsBitIdentical:
    def test_policy_without_plan_changes_nothing(self):
        """A policy alone (no injector) must not perturb time or output."""
        base, base_time = baseline()
        machine = Machine(resilience=ResiliencePolicy())
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now == base_time
        assert machine.fault_stats.total_injected == 0

    def test_empty_plan_changes_nothing(self):
        """An injector that never fires reduces to the original timing."""
        base, base_time = baseline()
        machine = Machine(fault_plan=FaultPlan(scripted=[]))
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now == base_time


class TestTransferFaults:
    def test_h2d_corrupt_retried(self):
        base, base_time = baseline()
        plan = FaultPlan(scripted=[FaultSpec("h2d", 0, kind="corrupt")])
        machine = Machine(fault_plan=plan)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now > base_time
        stats = machine.fault_stats
        assert stats.injected == {"h2d:corrupt": 1}
        assert stats.retries == 1
        assert stats.recovery_seconds > 0

    def test_d2h_stall_counts_timeout(self):
        base, base_time = baseline()
        plan = FaultPlan(scripted=[FaultSpec("d2h", 0, kind="stall")])
        machine = Machine(fault_plan=plan)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now > base_time
        assert machine.fault_stats.timeouts == 1

    def test_exhausted_transfer_degrades_not_lost(self):
        """Retries exhausted: the link limps through at degraded rate."""
        base, base_time = baseline()
        policy = ResiliencePolicy(max_retries=2)
        plan = FaultPlan(
            scripted=[FaultSpec("h2d", i, kind="corrupt") for i in range(3)]
        )
        machine = Machine(fault_plan=plan, resilience=policy)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.fault_stats.degraded_transfers == 1
        assert machine.fault_stats.retries == 2
        assert machine.clock.now > base_time


class TestKernelFaults:
    def test_crash_retried(self):
        base, base_time = baseline()
        plan = FaultPlan(scripted=[FaultSpec("kernel", 0, kind="crash")])
        machine = Machine(fault_plan=plan)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.clock.now > base_time
        assert machine.fault_stats.injected == {"kernel:crash": 1}

    def test_hang_burns_watchdog_timeout(self):
        policy = ResiliencePolicy(kernel_timeout=0.123)
        plan = FaultPlan(scripted=[FaultSpec("kernel", 0, kind="hang")])
        machine = Machine(fault_plan=plan, resilience=policy)
        run_with(machine)
        assert machine.fault_stats.timeouts == 1
        assert machine.fault_stats.recovery_seconds > 0.123

    def test_exhausted_retries_fall_back_to_host(self):
        base, base_time = baseline()
        plan = FaultPlan(
            scripted=[FaultSpec("kernel", i, kind="crash") for i in range(4)]
        )
        machine = Machine(fault_plan=plan)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.fault_stats.host_fallbacks == 1
        assert machine.fault_stats.fallback_seconds > 0
        assert machine.clock.now > base_time

    def test_no_host_fallback_raises(self):
        policy = ResiliencePolicy(host_fallback=False)
        plan = FaultPlan(
            scripted=[FaultSpec("kernel", i, kind="crash") for i in range(4)]
        )
        machine = Machine(fault_plan=plan, resilience=policy)
        with pytest.raises(OffloadTimeout, match="abandoned after 4 attempts"):
            run_with(machine)


class TestAllocFaults:
    def test_injected_oom_demotes_to_streaming(self):
        """A device OOM on a demotable loop restarts it block-granular."""
        base, base_time = baseline()
        plan = FaultPlan(scripted=[FaultSpec("alloc", 0, kind="oom")])
        machine = Machine(fault_plan=plan)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        stats = machine.fault_stats
        assert stats.oom_demotions == 1
        assert stats.injected == {"alloc:oom": 1}
        assert machine.clock.now > base_time

    def test_demotion_disabled_retries_transient_oom(self):
        base, base_time = baseline()
        policy = ResiliencePolicy(demote_on_oom=False)
        plan = FaultPlan(scripted=[FaultSpec("alloc", 0, kind="oom")])
        machine = Machine(fault_plan=plan, resilience=policy)
        result = run_with(machine)
        assert np.array_equal(result.array("B"), base.array("B"))
        assert machine.fault_stats.oom_demotions == 0
        assert machine.fault_stats.retries == 1
        assert machine.clock.now > base_time

    def test_oom_carries_allocation_name(self):
        mem = DeviceMemoryManager(capacity=100)
        with pytest.raises(DeviceOutOfMemory) as exc_info:
            mem.allocate("prices", 1000)
        exc = exc_info.value
        assert exc.name == "prices"
        assert not exc.injected
        assert "'prices'" in str(exc)

    def test_injected_oom_is_tagged(self):
        plan = FaultPlan(scripted=[FaultSpec("alloc", 0, kind="oom")])
        machine = Machine(fault_plan=plan)
        with pytest.raises(DeviceOutOfMemory) as exc_info:
            machine.coi.alloc_buffer("scratch", 16)
        assert exc_info.value.injected
        assert "(injected)" in str(exc_info.value)


class TestSignalFaults:
    def test_lost_signal_costs_timeout_but_delivers(self):
        policy = ResiliencePolicy(signal_timeout=0.0625)
        plan = FaultPlan(scripted=[FaultSpec("signal", 0, kind="lost")])
        machine = Machine(fault_plan=plan, resilience=policy)
        coi = machine.coi
        event = coi.launch_kernel(0.001, label="work")
        coi.post_signal(7, [event])
        before = machine.clock.now
        events = coi.take_signal(7)
        assert events == [event]
        assert machine.fault_stats.signals_lost == 1
        assert machine.clock.now == before + 0.0625


class TestChooseDemotionBlocks:
    def test_small_footprint_uses_default(self):
        assert choose_demotion_blocks(1.0e6, 1.0e9) >= 2

    def test_tight_memory_raises_block_count(self):
        roomy = choose_demotion_blocks(1.0e6, 1.0e9)
        tight = choose_demotion_blocks(8.0e8, 1.0e8)
        assert tight > roomy
        # Two resident blocks must fit in half the free budget.
        assert 2.0 * 8.0e8 / tight <= 0.5 * 1.0e8

    def test_never_below_two(self):
        assert choose_demotion_blocks(0.0, 1.0e9) >= 2
        assert choose_demotion_blocks(10.0, 0.0) >= 2


class TestFaultStats:
    def test_add_merges_counters(self):
        a = FaultStats()
        b = FaultStats()
        a.injected["h2d:corrupt"] = 2
        a.retries = 1
        b.injected["h2d:corrupt"] = 1
        b.injected["kernel:hang"] = 3
        b.timeouts = 4
        a.add(b)
        assert a.injected == {"h2d:corrupt": 3, "kernel:hang": 3}
        assert a.retries == 1
        assert a.timeouts == 4
        assert a.total_injected == 6

    def test_as_dict_round_trips_counters(self):
        stats = FaultStats()
        stats.retries = 2
        stats.injected["alloc:oom"] = 1
        payload = stats.as_dict()
        assert payload["retries"] == 2
        assert payload["injected"] == {"alloc:oom": 1}
