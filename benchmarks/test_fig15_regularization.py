"""Figure 15: performance gains by regularization.

nn (array reordering removes the unused record fields from the bus) and
srad (loop splitting makes the math half vectorizable).  Paper: 1.23x and
1.25x, average 1.25x.
"""

from benchmarks.conftest import emit
from repro.experiments.figures import figure15
from repro.experiments.report import render_figure


def test_figure15_regularization_gains(benchmark, runner):
    fig = benchmark.pedantic(
        lambda: figure15(runner), rounds=1, iterations=1
    )
    emit(render_figure(fig))
    for name, gain in fig.series.items():
        assert 1.05 < gain < 2.0, (name, gain)
