"""End-to-end integration tests on programs outside the benchmark suite.

Each scenario exercises the whole stack: parse -> analyze -> insert
offload pragmas -> optimize -> interpret on the simulated machine ->
compare outputs and timing against the unoptimized run.
"""

import numpy as np
import pytest

from repro import optimize_source, run_source
from repro.analysis.offload import insert_offload_pragmas
from repro.minic.parser import parse, parse_expr
from repro.minic.printer import to_source
from repro.runtime.executor import Machine, run_program
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.streaming import StreamingOptions

# A two-phase "molecular dynamics" step: gather neighbour forces through
# an index table (irregular), then integrate positions (regular).
MD_SOURCE = """
void main() {
    for (int step = 0; step < nsteps; step++) {
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            float f = 0.0;
            f = f + pos[nbr[2 * i]] * 0.5;
            f = f + pos[nbr[2 * i + 1]] * 0.5;
            force[i] = f - pos[i];
        }
#pragma omp parallel for
        for (int i = 0; i < n; i++) {
            vel[i] = vel[i] * 0.99 + force[i] * 0.01;
            pos[i] = pos[i] + vel[i] * 0.01;
        }
    }
}
"""

# A histogram-style reduction over streamed data.
REDUCE_SOURCE = """
void main() {
    float total = 0.0;
#pragma omp parallel for reduction(+:total)
    for (int i = 0; i < n; i++) {
        total += sqrt(data[i]) * weightscale;
    }
    grand = total;
}
"""


def md_arrays(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "pos": rng.random(n).astype(np.float32),
        "vel": np.zeros(n, dtype=np.float32),
        "force": np.zeros(n, dtype=np.float32),
        "nbr": rng.integers(0, n, 2 * n).astype(np.int32),
    }


class TestMolecularDynamicsPipeline:
    N = 512
    STEPS = 4
    SCALE = 2000.0

    def run_variant(self, program_or_source):
        return run_program(
            program_or_source,
            arrays=md_arrays(self.N),
            scalars={"n": self.N, "nsteps": self.STEPS},
            machine=Machine(scale=self.SCALE),
        )

    def test_full_pipeline(self):
        cpu = self.run_variant(MD_SOURCE)

        naive = parse(MD_SOURCE)
        inserted = insert_offload_pragmas(naive, {"pos": parse_expr("n")})
        assert inserted == 2
        mic = self.run_variant(naive)

        optimized = parse(to_source(naive))
        result = CompOptimizer(
            OptimizationPlan(array_lengths={"pos": parse_expr("n")})
        ).optimize(optimized)
        assert result.was_applied("offload-merging")
        opt = self.run_variant(optimized)

        for name in ("pos", "vel"):
            assert np.allclose(cpu.array(name), mic.array(name), rtol=1e-6)
            assert np.array_equal(mic.array(name), opt.array(name))
        # Merging kills the 2*nsteps launches and per-step transfers.
        assert opt.stats.kernel_launches == 1
        assert opt.stats.total_time < mic.stats.total_time / 2


class TestReductionPipeline:
    def test_streamed_reduction_matches(self):
        n = 999  # deliberately awkward block boundary
        data = np.abs(np.random.default_rng(3).random(n)).astype(np.float32)

        cpu = run_source(
            REDUCE_SOURCE, arrays={"data": data.copy()},
            scalars={"n": n, "weightscale": 2.0},
        )
        optimized = optimize_source(REDUCE_SOURCE)
        assert "offload_transfer" in optimized
        opt = run_source(
            optimized, arrays={"data": data.copy()},
            scalars={"n": n, "weightscale": 2.0},
        )
        assert opt.scalar("grand") == pytest.approx(cpu.scalar("grand"))


class TestOptimizerIdempotence:
    def test_second_pass_is_a_noop(self):
        source = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i] + 1.0; }
        }
        """
        once = optimize_source(source)
        twice = optimize_source(once)
        assert parse(twice) == parse(once)

    def test_optimizing_cpu_only_program_changes_nothing(self):
        source = "void main() { for (int i = 0; i < n; i++) { B[i] = A[i]; } }"
        assert parse(optimize_source(source)) == parse(source)


class TestScaleInvariance:
    SOURCE = """
    void main() {
    #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
    #pragma omp parallel for
        for (int i = 0; i < n; i++) { B[i] = A[i] * 3.0; }
    }
    """

    def _gain(self, scale):
        def arrays():
            return {
                "A": np.ones(1024, dtype=np.float32),
                "B": np.zeros(1024, dtype=np.float32),
            }

        base = run_program(
            self.SOURCE, arrays=arrays(), scalars={"n": 1024},
            machine=Machine(scale=scale),
        ).stats.total_time
        prog = parse(self.SOURCE)
        CompOptimizer(
            OptimizationPlan(streaming_options=StreamingOptions(num_blocks=16))
        ).optimize(prog)
        opt = run_program(
            prog, arrays=arrays(), scalars={"n": 1024},
            machine=Machine(scale=scale),
        ).stats.total_time
        return base / opt

    def test_streaming_gain_grows_with_problem_size(self):
        """At tiny sizes launch overhead dominates and streaming cannot
        help; at paper scale the overlap wins.  The crossover exists."""
        small = self._gain(scale=10.0)
        large = self._gain(scale=50_000.0)
        assert large > small
        assert large > 1.2
