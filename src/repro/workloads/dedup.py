"""dedup (PARSEC): pipelined chunking / hashing / compression.

Shape: dedup's pipeline already processes its input in chunks, and the
paper notes its MIC port "has data streaming implemented manually.
Therefore, our optimizations do not bring any further speedup."  The MIC
source below is exactly that: a hand-written double-buffered transfer
pipeline (the Figure 5(c) shape, written by the programmer instead of the
compiler).  The per-byte work is compression-like — a rolling state
update with dictionary lookups — which keeps the kernel scalar (indirect
dictionary indexing defeats vectorization) and compute-heavy enough that
the hand-streamed port beats the CPU.  COMP's streaming transform refuses
loops that already use asynchronous offload, and merging refuses
hand-pipelined parents, so the optimizer leaves dedup unchanged.
Table II: no optimization applies.
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import OptimizationPlan
from repro.workloads.base import MiniCWorkload, Table2Row, input_rng

EXEC_ELEMS = 3072
PAPER_ELEMS = 168_000_000  # "672 M data" bytes = 168M floats
BLOCKS = 8
DICT_SIZE = 256


def _body(content: str, hash_out: str = "h1", ratio_out: str = "r1") -> str:
    """The per-element hash + compression state machine."""
    return f"""
                    float h = {content}[i] * 2654435761.0;
                    h = h - floor(h / 65536.0) * 65536.0;
                    int slot = (int)h % {DICT_SIZE};
                    float d = dictv[slot];
                    float acc = {content}[i];
                    for (int w = 0; w < 8; w++) {{
                        acc = acc * 31.0 + d + sqrt(acc * acc + (float)w + 1.0);
                    }}
                    {hash_out}[i] = h;
                    {ratio_out}[i] = acc;
"""


SOURCE = f"""
void main() {{
#pragma omp parallel for
    for (int i = 0; i < n; i++) {{
{_body("content", "hashes", "ratios")}
    }}
}}
"""

MIC_SOURCE = f"""
void main() {{
    int bsize = (n + nb - 1) / nb;
    int len0 = min(bsize, n);
#pragma offload_transfer target(mic:0) nocopy(c1 : length(bsize) alloc_if(1) free_if(0)) nocopy(c2 : length(bsize) alloc_if(1) free_if(0)) nocopy(h1 : length(bsize) alloc_if(1) free_if(0)) nocopy(r1 : length(bsize) alloc_if(1) free_if(0)) in(dictv : length({DICT_SIZE}) alloc_if(1) free_if(0))
#pragma offload_transfer target(mic:0) in(content[0:len0] : into(c1) alloc_if(0) free_if(0)) signal(0)
    for (int k = 0; k < nb; k++) {{
        int start = k * bsize;
        int len = min(bsize, n - start);
        if (len > 0) {{
            int nstart = start + bsize;
            int nlen = min(bsize, n - nstart);
            if (nlen > 0) {{
                if ((k + 1) % 2 == 0) {{
#pragma offload_transfer target(mic:0) in(content[nstart:nlen] : into(c1) alloc_if(0) free_if(0)) signal(k + 1)
                    ;
                }} else {{
#pragma offload_transfer target(mic:0) in(content[nstart:nlen] : into(c2) alloc_if(0) free_if(0)) signal(k + 1)
                    ;
                }}
            }}
            if (k % 2 == 0) {{
#pragma offload target(mic:0) nocopy(c1 : alloc_if(0) free_if(0)) nocopy(h1 : alloc_if(0) free_if(0)) nocopy(r1 : alloc_if(0) free_if(0)) nocopy(dictv : alloc_if(0) free_if(0)) in(len) wait(k) out(h1[0:len] : into(hashes[start:len]) alloc_if(0) free_if(0)) out(r1[0:len] : into(ratios[start:len]) alloc_if(0) free_if(0)) persistent(1) session(dedup)
#pragma omp parallel for
                for (int i = 0; i < len; i++) {{
{_body("c1")}
                }}
            }} else {{
#pragma offload target(mic:0) nocopy(c2 : alloc_if(0) free_if(0)) nocopy(h1 : alloc_if(0) free_if(0)) nocopy(r1 : alloc_if(0) free_if(0)) nocopy(dictv : alloc_if(0) free_if(0)) in(len) wait(k) out(h1[0:len] : into(hashes[start:len]) alloc_if(0) free_if(0)) out(r1[0:len] : into(ratios[start:len]) alloc_if(0) free_if(0)) persistent(1) session(dedup)
#pragma omp parallel for
                for (int i = 0; i < len; i++) {{
{_body("c2")}
                }}
            }}
        }}
    }}
#pragma offload_transfer target(mic:0) nocopy(c1 : alloc_if(0) free_if(1)) nocopy(c2 : alloc_if(0) free_if(1)) nocopy(h1 : alloc_if(0) free_if(1)) nocopy(r1 : alloc_if(0) free_if(1)) nocopy(dictv : alloc_if(0) free_if(1))
}}
"""


def make_arrays(seed=None):
    """Build the chunk hashing pipeline benchmark's executed-scale input arrays."""
    rng = input_rng(seed, 88)
    n = EXEC_ELEMS
    return {
        "content": (rng.random(n) * 255.0).astype(np.float32),
        "dictv": (rng.random(DICT_SIZE) * 16.0).astype(np.float32),
        "hashes": np.zeros(n, dtype=np.float32),
        "ratios": np.zeros(n, dtype=np.float32),
    }


def make() -> MiniCWorkload:
    """Construct the dedup workload instance."""
    workload = MiniCWorkload(
        name="dedup",
        source=SOURCE,
        table2=Table2Row(
            suite="PARSEC",
            paper_input="672 M data",
            kloc=2.319,
        ),
        make_arrays=make_arrays,
        scalars={"n": EXEC_ELEMS, "nb": BLOCKS},
        sim_scale=PAPER_ELEMS / EXEC_ELEMS,
        output_arrays=["hashes", "ratios"],
        array_length_hints={"dictv": "256"},
        plan=OptimizationPlan(),
        description="hand-streamed chunk hashing pipeline (already optimized)",
    )
    workload.mic_source = MIC_SOURCE
    return workload
