"""Deterministic fault injection and the resilient offload runtime.

The paper's offload stack has real failure surfaces the reproduction
otherwise models only as hard crashes: un-streamed footprints that exceed
MIC memory are "a runtime error" (Section VI), persistent kernels depend
on COI signal delivery (Section III), and every transfer rides a PCIe
link that in practice drops, stalls, and retrains.  This package makes
those failures first-class and survivable:

* :mod:`repro.faults.plan` — a seed-driven (or explicitly scripted)
  :class:`FaultPlan` that the COI runtime, the device memory manager and
  the signal path consult at each operation;
* :mod:`repro.faults.policy` — the :class:`ResiliencePolicy` knobs:
  retry counts, exponential backoff (optionally capped by
  ``backoff_max``), detection timeouts, OOM demotion, host fallback,
  and the checkpoint/restart knobs (``checkpoint_interval``,
  ``checkpoint_cost``, ``max_resets``) that make full ``device:reset``
  faults survivable;
* :mod:`repro.faults.stats` — :class:`FaultStats` accounting that flows
  through :class:`~repro.workloads.base.WorkloadRun` into the harness;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` binding a
  plan to the stats of one run;
* :mod:`repro.faults.campaign` — the ``repro faults`` campaign runner
  that executes workloads under seeded fault scenarios and checks
  outputs stay bit-identical while simulated time strictly grows.

*Announced* faults only ever cost *simulated time* (and bookkeeping):
the eager numpy data movement that gives the interpreter its correctness
guarantee is never corrupted, so a recovered run must produce
bit-identical outputs — exactly the property the campaign asserts.
*Silent* fault kinds (``h2d:silent``, ``d2h:silent``, ``kernel:sdc``,
``arena`` bitflips — see :data:`~repro.faults.plan.SILENT_KINDS`) do
corrupt the numpy state without raising; the
:class:`~repro.runtime.integrity.IntegrityManager` detects and repairs
them at checksum verification points when
``ResiliencePolicy.integrity_mode`` enables it, restoring the
bit-identical contract, and counts any corruption that reaches host
output as an *SDC escape*.
"""

from repro.faults.campaign import CampaignResult, ScenarioOutcome, run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DEFAULT_RATES,
    FAULT_SITES,
    SILENT_KINDS,
    SITE_KINDS,
    Fault,
    FaultPlan,
    FaultSpec,
    split_device_key,
)
from repro.faults.policy import ResiliencePolicy
from repro.faults.stats import FaultStats

__all__ = [
    "CampaignResult",
    "DEFAULT_RATES",
    "FAULT_SITES",
    "SILENT_KINDS",
    "SITE_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultStats",
    "ResiliencePolicy",
    "ScenarioOutcome",
    "run_campaign",
    "split_device_key",
]
