"""Differential test: all execution engines against the tree walker.

The batch and codegen execution tiers must be pure performance changes:
for every workload the outputs must be bit-identical, the dynamic
operation counters identical, and the simulated time identical to the
tree-walking interpreter's.  Any divergence means an engine's semantics
or its analytic counter model drifted from the reference walker.
"""

import functools

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from repro.workloads.base import MiniCWorkload
from repro.workloads.suite import get_workload, workload_names


@functools.lru_cache(maxsize=None)
def _run(name, engine):
    """Memoized: the tree reference run is shared by every engine
    parametrization (results are only compared, never mutated)."""
    return get_workload(name).run("opt", engine=engine)


@pytest.mark.parametrize("engine", ["batch", "codegen"])
@pytest.mark.parametrize("name", workload_names())
def test_engines_agree(name, engine):
    tree = _run(name, "tree")
    other = _run(name, engine)

    assert set(other.outputs) == set(tree.outputs)
    for key in tree.outputs:
        expected, actual = tree.outputs[key], other.outputs[key]
        assert expected.dtype == actual.dtype, key
        assert expected.tobytes() == actual.tobytes(), (
            f"{name}: output {key!r} differs between engines"
        )

    assert other.stats.ops.as_dict() == tree.stats.ops.as_dict(), (
        f"{name}: dynamic op counters differ between engines"
    )
    assert other.stats.total_time == tree.stats.total_time, (
        f"{name}: simulated time differs between engines"
    )
    assert other.stats.transfer_time == tree.stats.transfer_time
    assert other.stats.bytes_to_device == tree.stats.bytes_to_device
    assert other.stats.bytes_from_device == tree.stats.bytes_from_device


@pytest.mark.parametrize("name", workload_names())
def test_tracing_is_invisible(name):
    """An instrumented run must be bit-identical to an untraced one.

    The tracer only observes — it never advances the clock or schedules
    timeline work — so outputs, dynamic operation counters, and every
    simulated-time/traffic figure must match the untraced run exactly.
    """
    workload = get_workload(name)
    untraced = workload.run("opt")
    tracer = Tracer()
    traced = workload.run("opt", machine=workload.machine(tracer=tracer))

    assert set(traced.outputs) == set(untraced.outputs)
    for key in untraced.outputs:
        assert (
            untraced.outputs[key].tobytes() == traced.outputs[key].tobytes()
        ), f"{name}: tracing changed output {key!r}"

    assert traced.stats.ops.as_dict() == untraced.stats.ops.as_dict(), (
        f"{name}: tracing changed dynamic op counters"
    )
    assert traced.stats.total_time == untraced.stats.total_time, (
        f"{name}: tracing changed simulated time"
    )
    assert traced.stats.transfer_time == untraced.stats.transfer_time
    assert traced.stats.bytes_to_device == untraced.stats.bytes_to_device
    assert traced.stats.bytes_from_device == untraced.stats.bytes_from_device
    assert traced.stats.kernel_launches == untraced.stats.kernel_launches
    assert traced.stats.device_peak_bytes == untraced.stats.device_peak_bytes
    # ... and the tracer really did record the run it watched.
    assert tracer.spans


def test_batch_engine_actually_engages():
    """The fast path must really run, not silently fall back everywhere."""
    from repro.runtime.executor import Executor

    workload = get_workload("blackscholes")
    assert isinstance(workload, MiniCWorkload)
    program = workload.opt_program()
    executor = Executor(
        program, workload.machine(), engine="batch"
    )
    executor.run(arrays=workload.make_arrays(), scalars=dict(workload.scalars))
    assert executor._batch_stats["batched"] > 0


def test_codegen_engine_actually_engages():
    """A straight-line kernel must run through the generated-source tier
    (compiled exactly once), not silently fall back to batch."""
    from repro.runtime.executor import Executor, Machine, run_program

    src = """
    void main() {
        #pragma omp parallel for
        for (int i = 0; i < n; i++) {
            out[i] = a[i] * 2.0 + b[i];
        }
    }
    """
    n = 256
    rng = np.random.default_rng(0)
    arrays = {
        "a": rng.standard_normal(n),
        "b": rng.standard_normal(n),
        "out": np.zeros(n),
    }
    from repro.minic.parser import parse

    executor = Executor(parse(src), Machine(), engine="codegen")
    executor.run(arrays=arrays, scalars={"n": n})
    assert executor._codegen_stats["ran"] > 0
    assert executor._codegen_stats["fallback"] == 0
    np.testing.assert_array_equal(
        arrays["out"], arrays["a"] * 2.0 + arrays["b"]
    )


@pytest.mark.parametrize("name", ["blackscholes", "kmeans", "CG", "nn"])
def test_disabled_checkpointing_is_invisible(name):
    """With ``checkpoint_interval=0`` (the default) and no faults, the
    whole resilience + checkpoint machinery must be a no-op: outputs,
    dynamic op counters, and simulated time bit-identical to a plain run.
    """
    from repro.faults import FaultPlan, ResiliencePolicy

    workload = get_workload(name)
    plain = workload.run("opt")
    machine = workload.machine(
        fault_plan=FaultPlan(scripted=[]), resilience=ResiliencePolicy()
    )
    guarded = workload.run("opt", machine=machine)

    assert set(guarded.outputs) == set(plain.outputs)
    for key in plain.outputs:
        assert (
            plain.outputs[key].tobytes() == guarded.outputs[key].tobytes()
        ), f"{name}: disabled checkpointing changed output {key!r}"
    assert guarded.stats.ops.as_dict() == plain.stats.ops.as_dict()
    assert guarded.stats.total_time == plain.stats.total_time, (
        f"{name}: disabled checkpointing changed simulated time"
    )
    assert guarded.stats.transfer_time == plain.stats.transfer_time
    assert guarded.stats.bytes_to_device == plain.stats.bytes_to_device
    assert machine.fault_stats.checkpoints_committed == 0
    assert machine.fault_stats.device_resets == 0


@pytest.mark.parametrize("name", ["blackscholes", "kmeans", "CG", "nn"])
def test_enabled_checkpointing_costs_only_time(name):
    """With checkpointing on but no faults, outputs and op counters stay
    bit-identical; only simulated time grows (the commit cost)."""
    from repro.faults import FaultPlan, ResiliencePolicy

    workload = get_workload(name)
    plain = workload.run("opt")
    machine = workload.machine(
        fault_plan=FaultPlan(scripted=[]),
        resilience=ResiliencePolicy(checkpoint_interval=2),
    )
    guarded = workload.run("opt", machine=machine)

    for key in plain.outputs:
        assert plain.outputs[key].tobytes() == guarded.outputs[key].tobytes()
    assert guarded.stats.ops.as_dict() == plain.stats.ops.as_dict()
    assert machine.fault_stats.checkpoints_committed > 0
    assert guarded.stats.total_time > plain.stats.total_time


@pytest.mark.parametrize("name", ["blackscholes", "kmeans", "CG", "nn"])
def test_integrity_off_is_invisible(name):
    """``integrity_mode="off"`` with no silent faults must be a no-op:
    outputs, op counters, and simulated time bit-identical to a plain
    run — no checksums are taken and no verification cost is charged.
    """
    from repro.faults import FaultPlan, ResiliencePolicy

    workload = get_workload(name)
    plain = workload.run("opt")
    machine = workload.machine(
        fault_plan=FaultPlan(scripted=[]),
        resilience=ResiliencePolicy(integrity_mode="off"),
    )
    guarded = workload.run("opt", machine=machine)

    for key in plain.outputs:
        assert plain.outputs[key].tobytes() == guarded.outputs[key].tobytes()
    assert guarded.stats.ops.as_dict() == plain.stats.ops.as_dict()
    assert guarded.stats.total_time == plain.stats.total_time, (
        f"{name}: disabled integrity changed simulated time"
    )
    assert machine.fault_stats.verifications == 0
    assert machine.fault_stats.verify_seconds == 0.0


@pytest.mark.parametrize("name", ["blackscholes", "kmeans", "CG", "nn"])
def test_integrity_full_costs_only_time(name):
    """``integrity_mode="full"`` with no silent faults keeps outputs and
    op counters bit-identical; checksum verification charges simulated
    time (which may overlap device slack but can never reduce it)."""
    from repro.faults import FaultPlan, ResiliencePolicy

    workload = get_workload(name)
    plain = workload.run("opt")
    machine = workload.machine(
        fault_plan=FaultPlan(scripted=[]),
        resilience=ResiliencePolicy(integrity_mode="full"),
    )
    guarded = workload.run("opt", machine=machine)

    for key in plain.outputs:
        assert plain.outputs[key].tobytes() == guarded.outputs[key].tobytes()
    assert guarded.stats.ops.as_dict() == plain.stats.ops.as_dict()
    assert guarded.stats.total_time >= plain.stats.total_time
    assert machine.fault_stats.verifications > 0
    assert machine.fault_stats.verify_seconds > 0
    assert machine.fault_stats.silent_detected == 0
    assert machine.fault_stats.sdc_escapes == 0


def test_mic_variant_agrees_for_blackscholes():
    workload = get_workload("blackscholes")
    tree = workload.run("mic", engine="tree")
    batch = workload.run("mic", engine="batch")
    for key in tree.outputs:
        assert tree.outputs[key].tobytes() == batch.outputs[key].tobytes()
    assert batch.stats.total_time == tree.stats.total_time
    assert batch.stats.ops.as_dict() == tree.stats.ops.as_dict()


def test_cpu_variant_agrees_for_kmeans():
    workload = get_workload("kmeans")
    tree = workload.run("cpu", engine="tree")
    batch = workload.run("cpu", engine="batch")
    for key in tree.outputs:
        assert tree.outputs[key].tobytes() == batch.outputs[key].tobytes()
    assert batch.stats.total_time == tree.stats.total_time
    assert batch.stats.ops.as_dict() == tree.stats.ops.as_dict()
