"""Checkpoint/restart recovery for streamed offloads.

A ``device:reset`` fault is the failure mode of last resort: the card
drops off the bus and *everything* resident on it — named buffers, arena
segments, persistent kernel threads, in-flight signals — is gone (see
:class:`~repro.hardware.device.ResetSemantics` for the timing model and
:meth:`~repro.runtime.coi.CoiRuntime.reset_device` for the wipe).  The
per-operation recovery ladder (retry → degrade → demote → host fallback)
cannot ride that out, because there is no device state left to retry
against.

This module adds the missing rung.  A :class:`CheckpointManager`
shadows the COI runtime's buffer bookkeeping:

* every allocation / free is noted, so the manager always knows the set
  of *live* device buffers and their simulated footprints;
* every host→device write is noted by ``(start, count)`` window, so the
  manager knows which byte ranges of each live buffer the host has an
  authoritative copy of (later writes to the same window supersede
  earlier ones — a streamed loop's slot re-uploads only its resident
  block, never the whole array);
* every completed offload block reports in, and every
  ``checkpoint_interval``-th block commits a checkpoint (costing
  ``checkpoint_cost`` simulated seconds of host time).

On a reset the manager restores the session: charge the detection +
re-init dead time, wipe the device, re-open the epoch, re-upload only
the live write windows, rebuild registered arenas (re-deriving their
augmented-pointer deltas), and re-charge the kernel time of blocks
completed since the last committed checkpoint.  Recovery runs with
injection suspended — it cannot recursively fault.

Correctness and timing stay decoupled, as everywhere in the simulator:
data movement is eager numpy in program order, so the *values* lost in
the wipe are restored from the host snapshot bit for bit, while the
*time* of recovery is priced from the recorded live windows and replayed
kernel seconds.  A resumed run therefore produces bit-identical outputs
and op counters to an uninterrupted one; only simulated time differs.
With ``checkpoint_interval`` left at 0 (the default) no manager is ever
attached and every hook is skipped — the seed's timing is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DeviceLost
from repro.hardware.device import RESET_SEMANTICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.coi import DEVICE, HOST, CoiRuntime


@dataclass
class _BufferRecord:
    """Live-buffer shadow: simulated footprint + host-known windows."""

    #: Simulated bytes charged to device memory (already scaled by the
    #: alloc path's ``account_elems`` cap for demoted offloads).
    charged_nbytes: int = 0
    #: Host-authoritative byte ranges, keyed ``(start, count)`` in
    #: elements → unscaled payload bytes.  Insertion-ordered; a repeated
    #: window replaces its payload size in place.
    writes: Dict[Tuple[int, int], int] = field(default_factory=dict)


@dataclass
class Checkpoint:
    """One committed recovery point."""

    #: Index of the last offload block covered by this checkpoint.
    block: int
    #: Arena generation at commit time (rebuilds bump it).
    arena_generation: int
    #: Simulated time of the commit.
    committed_at: float


class CheckpointManager:
    """Records recovery points and restores the session after a reset.

    Attached by the Machine only when
    ``ResiliencePolicy.checkpoint_interval > 0``; the COI runtime's
    ``note_*`` hooks are a dict lookup + assignment each, and are never
    reached at all when no manager is attached.
    """

    def __init__(self, policy, stats, tracer=None):
        self.policy = policy
        self.stats = stats
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._buffers: Dict[str, _BufferRecord] = {}
        self._arenas: List[object] = []
        #: Kernel seconds of blocks completed since the last commit —
        #: the work a reset forces the device to redo.  Each entry is
        #: ``(device_id, seconds)``; ``device_id`` is None outside a
        #: fleet, and lets a failover pull only the *lost* card's blocks.
        self._uncommitted: List[Tuple[Optional[str], float]] = []
        #: Persistent-session keys seen since the last commit, so the
        #: restore knows which thread-reuse sessions to re-prime.
        self._sessions: Dict[str, int] = {}
        self.blocks_completed = 0
        self.last_checkpoint: Optional[Checkpoint] = None
        self.resets_survived = 0

    # -- shadow bookkeeping (called from CoiRuntime) -------------------------

    def note_alloc(self, name: str, charged_nbytes: int) -> None:
        """A device buffer was (re)allocated with the given footprint."""
        record = self._buffers.get(name)
        if record is None:
            record = _BufferRecord()
            self._buffers[name] = record
        record.charged_nbytes = max(record.charged_nbytes, int(charged_nbytes))

    def note_free(self, name: str) -> None:
        """A device buffer was freed: nothing of it needs restoring."""
        self._buffers.pop(name, None)

    def note_write(self, name: str, start: int, count: int, nbytes: int) -> None:
        """The host wrote ``[start, start+count)`` into buffer *name*.

        *nbytes* is the unscaled payload size; the restore path's
        ``raw_transfer`` applies the simulation scale exactly as the
        original ``write_buffer`` did.
        """
        record = self._buffers.get(name)
        if record is None:
            record = _BufferRecord()
            self._buffers[name] = record
        record.writes[(start, count)] = int(nbytes)

    def register_arena(self, arena) -> None:
        """Track an arena allocator for post-reset rebuild."""
        if arena not in self._arenas:
            self._arenas.append(arena)

    def buffer_record(self, name: str) -> Optional[_BufferRecord]:
        """The live-buffer shadow for *name* (None when not live).

        The fleet's failover path uses this to re-upload only the write
        windows the host is authoritative for, exactly like the
        single-device restore below.
        """
        return self._buffers.get(name)

    def take_uncommitted(self, device_id: Optional[str]) -> List[Tuple[Optional[str], float]]:
        """Pop the uncommitted entries charged to *device_id*.

        The fleet failover re-executes only the lost card's blocks on a
        survivor; other devices' uncommitted work stays pending for
        their own (hypothetical) later resets.
        """
        taken = [e for e in self._uncommitted if e[0] == device_id]
        self._uncommitted = [e for e in self._uncommitted if e[0] != device_id]
        return taken

    # -- checkpoints ---------------------------------------------------------

    def block_completed(
        self,
        coi: CoiRuntime,
        kernel_seconds: float,
        session: Optional[str] = None,
    ) -> None:
        """One offload block finished; commit if the interval says so."""
        self.blocks_completed += 1
        self._uncommitted.append((coi.active_device_id, float(kernel_seconds)))
        if session is not None:
            self._sessions[session] = self.blocks_completed
        interval = self.policy.checkpoint_interval
        if interval > 0 and self.blocks_completed % interval == 0:
            self.commit(coi)

    def commit(self, coi: CoiRuntime) -> None:
        """Record a recovery point, charging the checkpoint cost.

        A checkpoint that certified corrupted state would replay that
        corruption on every restore, so in ``full`` integrity mode the
        resident buffers are checksum-verified *before* the commit is
        declared good.
        """
        if coi.integrity is not None:
            coi.integrity.on_checkpoint_commit(coi)
        cost = self.policy.checkpoint_cost
        if cost > 0.0:
            coi.clock.advance(cost)
        generation = max(
            (getattr(a, "generation", 0) for a in self._arenas), default=0
        )
        self.last_checkpoint = Checkpoint(
            block=self.blocks_completed,
            arena_generation=generation,
            committed_at=coi.clock.now,
        )
        self._uncommitted.clear()
        stats = self.stats
        if stats is not None:
            stats.checkpoints_committed += 1
            stats.checkpoint_seconds += cost
        if self.tracer.enabled:
            self.tracer.instant(
                "checkpoint:commit", coi.clock.now, track=HOST,
                block=self.blocks_completed, cost=cost,
            )
            self.tracer.metrics.counter("checkpoint.commits").inc()

    # -- reset recovery ------------------------------------------------------

    def handle_reset(self, coi: CoiRuntime, fault=None) -> None:
        """Ride out a full device reset and resume from the checkpoint.

        Raises :class:`~repro.errors.DeviceLost` when the reset budget
        (``ResiliencePolicy.max_resets``) is exhausted — at that point
        the device is presumed genuinely dead, not transiently wedged.
        """
        policy = self.policy
        stats = self.stats
        if self.resets_survived >= policy.max_resets:
            raise DeviceLost(
                f"device reset #{self.resets_survived + 1} exceeds the "
                f"policy's max_resets={policy.max_resets}: giving the "
                f"device up for dead"
            )
        started = coi.clock.now
        tracer = self.tracer

        # 1. Dead time: watchdog detection + driver/thread-pool re-init.
        threads = coi.spec.mic.threads_used
        overhead = RESET_SEMANTICS.overhead(threads)
        coi.clock.advance(overhead)
        if stats is not None:
            stats.timeouts += 1
            stats.recovery_seconds += overhead
            stats.device_resets += 1

        # 2. The wipe.  Snapshot the numpy state first: the simulator's
        # correctness layer is eager host-ordered data movement, so the
        # host still "has" these values — re-inserting them restores the
        # exact pre-reset image while the *cost* of getting them back is
        # charged from the recorded live windows below.
        arrays_snapshot = dict(coi.device.arrays)
        scalars_snapshot = dict(coi.device.scalars)
        if tracer.enabled:
            tracer.instant(
                "device:reset", coi.clock.now, track=DEVICE,
                epoch=coi.epoch, buffers_lost=len(arrays_snapshot),
            )
        coi.reset_device()
        coi.device.arrays.update(arrays_snapshot)
        coi.device.scalars.update(scalars_snapshot)

        # 3. Rebuild, with injection suspended (recovery cannot
        # recursively fault).  Only *live* buffers and only their
        # host-known windows are re-uploaded — for a streamed offload
        # that is the resident slots, not the whole array.
        reuploaded = 0
        with coi.injector_suspended():
            events = []
            for name, record in self._buffers.items():
                coi.device_memory.allocate(name, record.charged_nbytes)
                for (start, count), nbytes in record.writes.items():
                    events.append(
                        coi.raw_transfer(
                            nbytes,
                            to_device=True,
                            sync=False,
                            label=f"ckpt:reupload:{name}@{start}",
                            block=True,
                        )
                    )
                    reuploaded += 1
            for event in events:
                coi.clock.wait_until(event)
            for arena in self._arenas:
                arena.rebuild_on_device(coi)

            # 4. Re-charge the kernel time of blocks completed since the
            # last commit: their *results* survive in the host-ordered
            # numpy state, but the simulated device must spend the time
            # recomputing them.
            recomputed = len(self._uncommitted)
            redo_seconds = sum(seconds for _, seconds in self._uncommitted)
            if redo_seconds > 0.0:
                redo = coi.timeline.schedule(
                    DEVICE, redo_seconds, label="ckpt:replay",
                    not_before=coi.clock.now,
                )
                coi.clock.wait_until(redo)

        if stats is not None:
            stats.blocks_reuploaded += reuploaded
            stats.blocks_recomputed += recomputed
            stats.recovery_seconds += coi.clock.now - started - overhead
            stats.record_action("device", "reset_survived")

        # The restore itself is a consistent recovery point.
        self._uncommitted.clear()
        self._sessions.clear()
        generation = max(
            (getattr(a, "generation", 0) for a in self._arenas), default=0
        )
        self.last_checkpoint = Checkpoint(
            block=self.blocks_completed,
            arena_generation=generation,
            committed_at=coi.clock.now,
        )
        self.resets_survived += 1

        if tracer.enabled:
            tracer.span(
                "recovery:device-reset", DEVICE, started, coi.clock.now,
                epoch=coi.epoch, buffers_reuploaded=reuploaded,
                blocks_recomputed=recomputed, overhead=overhead,
            )
            metrics = tracer.metrics
            metrics.counter("checkpoint.device_resets").inc()
            metrics.counter("checkpoint.blocks_reuploaded").inc(reuploaded)
            metrics.counter("checkpoint.blocks_recomputed").inc(recomputed)
