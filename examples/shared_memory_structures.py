#!/usr/bin/env python
"""Shared memory for large pointer-based structures (Section V).

Builds a ferret-style database of linked objects two ways and transfers
it to the coprocessor:

* under the **MYO baseline**, every allocation takes a shared-memory
  descriptor slot and every first device touch faults a 4 KiB page
  across the bus;
* under **COMP's arena**, objects are bump-allocated into segmented
  buffers that are bulk-DMA'd once, and device-side dereferences use the
  bid + delta-table translation of Table I.

The demo shows (a) the Table I pointer operations on a live pointer,
(b) MYO collapsing at ferret's 80,298 allocations while the arena keeps
going, and (c) the transfer-time gap behind Table III's 7.81x.

Run:  python examples/shared_memory_structures.py
"""

from repro.errors import MyoLimitError
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine
from repro.runtime.myo import MyoRuntime
from repro.runtime.smartptr import NULL

N_OBJECTS = 80_298  # ferret's runtime allocation count
OBJ_BYTES = 1084  # 83 MB total / 80298 allocations


def table1_demo(arena: ArenaAllocator) -> None:
    obj = arena.deref(arena.objects[next(iter(arena.objects))].ptr)
    ptr = obj.ptr
    mic_addr = arena.delta.translate(ptr)
    back = arena.delta.take_address(mic_addr, ptr.bid, on_mic=True)
    print("Table I live demo:")
    print(f"  *p on CPU reads addr 0x{ptr.addr:x} (bid {ptr.bid})")
    print(f"  *p on MIC reads addr 0x{mic_addr:x} "
          f"(= addr + delta[{ptr.bid}])")
    print(f"  p = &obj on MIC stores 0x{back.addr:x} — the CPU address, "
          f"round-trip exact: {back == ptr}")


def main() -> None:
    # --- MYO baseline -----------------------------------------------------
    machine = Machine()
    myo = MyoRuntime(machine.coi)
    allocated = 0
    try:
        for _ in range(N_OBJECTS):
            myo.shared_malloc(OBJ_BYTES)
            allocated += 1
    except MyoLimitError as exc:
        print(f"MYO failed after {allocated} allocations: {exc}")
        print("(the paper: ferret 'cannot run correctly using Intel MYO "
              "due to the large number of allocations')\n")

    # MYO at the reduced scale the paper measured (1500 of 3500 images).
    reduced = int(N_OBJECTS * 1500 / 3500)
    machine_myo = Machine()
    myo = MyoRuntime(machine_myo.coi)
    addrs = [myo.shared_malloc(OBJ_BYTES) for _ in range(reduced)]
    for addr in addrs:
        myo.device_access(addr, OBJ_BYTES)
    myo_time = machine_myo.clock.now
    print(f"MYO at reduced scale: {reduced} allocations, "
          f"{myo.stats.page_faults} page faults, "
          f"transfer {myo_time * 1000:.1f} ms")

    # --- COMP arena --------------------------------------------------------
    machine_arena = Machine()
    arena = ArenaAllocator(chunk_bytes=16 << 20)
    head = None
    for _ in range(N_OBJECTS):
        node = arena.allocate(OBJ_BYTES, next=head.ptr if head else NULL)
        head = node
    print(f"\narena handled all {arena.alloc_count} allocations in "
          f"{len(arena.buffers)} buffers "
          f"({arena.total_reserved / 2**20:.0f} MiB reserved)")
    arena.copy_to_device(machine_arena.coi)
    arena_time = machine_arena.clock.now
    print(f"arena bulk DMA: {arena_time * 1000:.1f} ms")

    # Traverse the linked list on the device through translated pointers.
    count, ptr = 0, head.ptr
    while not ptr.is_null() and count < 5:
        obj = arena.deref(ptr, on_mic=True)
        ptr = obj.fields["next"]
        count += 1
    print(f"device-side traversal through {count} translated pointers ok\n")

    table1_demo(arena)

    reduced_arena_time = arena_time * reduced / N_OBJECTS
    print(f"\ntransfer-time gap at the measured scale: "
          f"{myo_time / reduced_arena_time:.1f}x in favour of the arena "
          f"(Table III attributes ferret's 7.81x to this mechanism)")


if __name__ == "__main__":
    main()
