"""Host and device memory spaces.

Arrays are numpy buffers; scalars are Python numbers.  The two spaces are
deliberately disjoint: offloaded code resolves array names against the
*device* space only, so any data the compiler forgot to transfer raises
:class:`~repro.errors.MissingTransferError` instead of silently reading
host memory — the simulated analogue of a segfault on the real card.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

import numpy as np

from repro.errors import MissingTransferError, RuntimeFault

Scalar = Union[int, float]


@dataclass
class HostSpace:
    """The host process memory: arrays and scalars by name."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    scalars: Dict[str, Scalar] = field(default_factory=dict)

    def bind_array(self, name: str, value: np.ndarray) -> None:
        """Install a numpy array under *name*."""
        self.arrays[name] = value

    def array(self, name: str) -> np.ndarray:
        """Look up a host array; RuntimeFault when absent."""
        if name not in self.arrays:
            raise RuntimeFault(f"host array {name!r} does not exist")
        return self.arrays[name]


@dataclass
class DeviceSpace:
    """Coprocessor memory: only holds what was explicitly transferred."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    scalars: Dict[str, Scalar] = field(default_factory=dict)

    def array(self, name: str) -> np.ndarray:
        """Look up a device buffer; strict (raises when absent)."""
        if name not in self.arrays:
            raise MissingTransferError(
                f"device code touched array {name!r} which was never "
                f"transferred to the coprocessor"
            )
        return self.arrays[name]

    def holds(self, name: str) -> bool:
        """True when the device holds buffer *name*."""
        return name in self.arrays
