"""Tests for offload pragma inference (Apricot-like pass)."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.footprint import clause_bytes, eval_int_expr, offload_footprint
from repro.analysis.offload import (
    infer_offload_pragma,
    insert_offload_pragmas,
    loop_bound,
)
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse, parse_expr
from repro.minic.printer import to_source


def main_loop(source):
    return parse(source).function("main").body.stmts[-1]


BLACKSCHOLES = """
void main() {
#pragma omp parallel for
    for (int i = 0; i < numOptions; i++) {
        prices[i] = BlkSchls(sptprice[i], strike[i]);
    }
}
"""


class TestLoopBound:
    def test_simple_bound(self):
        loop = main_loop(BLACKSCHOLES)
        assert loop_bound(loop) == ast.Ident("numOptions")

    def test_le_bound(self):
        loop = main_loop("void main() { for (int i = 0; i <= n; i++) { A[i] = 0.0; } }")
        assert to_source(loop_bound(loop)) == "n + 1"

    def test_nonzero_start(self):
        loop = main_loop("void main() { for (int i = 1; i < n; i++) { A[i] = 0.0; } }")
        assert to_source(loop_bound(loop)) == "n - 1"

    def test_bad_condition_raises(self):
        loop = main_loop("void main() { for (int i = 0; n > i; i++) { A[i] = 0.0; } }")
        with pytest.raises(AnalysisError):
            loop_bound(loop)


class TestInference:
    def test_directions(self):
        pragma = infer_offload_pragma(main_loop(BLACKSCHOLES))
        by_dir = {}
        for clause in pragma.clauses:
            by_dir.setdefault(clause.direction, set()).add(clause.var)
        assert by_dir["in"] == {"sptprice", "strike", "numOptions"}
        assert by_dir["out"] == {"prices"}

    def test_unit_access_length_is_bound(self):
        pragma = infer_offload_pragma(main_loop(BLACKSCHOLES))
        clause = next(c for c in pragma.clauses if c.var == "sptprice")
        assert clause.length == ast.Ident("numOptions")

    def test_scalar_clause_has_no_length(self):
        pragma = infer_offload_pragma(main_loop(BLACKSCHOLES))
        clause = next(c for c in pragma.clauses if c.var == "numOptions")
        assert clause.length is None

    def test_strided_access_scales_length(self):
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) { C[i] = A[4 * i]; } }"
        )
        pragma = infer_offload_pragma(loop)
        clause = next(c for c in pragma.clauses if c.var == "A")
        # Last element touched is 4*(n-1); extent is that plus one.
        assert to_source(clause.length) == "4 * (n - 1) + 1"

    def test_guarded_write_only_array_becomes_inout(self):
        """A conditionally-written output keeps its untouched elements."""
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) {"
            " if (A[i] > 0.0) { B[i] = 1.0; } } }"
        )
        pragma = infer_offload_pragma(loop)
        clause = next(c for c in pragma.clauses if c.var == "B")
        assert clause.direction == "inout"

    def test_offset_access_extends_length(self):
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) { B[i] = A[i + 2]; } }"
        )
        pragma = infer_offload_pragma(loop)
        clause = next(c for c in pragma.clauses if c.var == "A")
        assert to_source(clause.length) == "n + 2"

    def test_indirect_access_uses_hint(self):
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) { C[i] = A[B[i]]; } }"
        )
        pragma = infer_offload_pragma(loop, {"A": parse_expr("asize")})
        clause = next(c for c in pragma.clauses if c.var == "A")
        assert clause.length == ast.Ident("asize")

    def test_indirect_access_without_hint_raises(self):
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) { C[i] = A[B[i]]; } }"
        )
        with pytest.raises(AnalysisError):
            infer_offload_pragma(loop)

    def test_inout_direction(self):
        loop = main_loop(
            "void main() { for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; } }"
        )
        pragma = infer_offload_pragma(loop)
        clause = next(c for c in pragma.clauses if c.var == "A")
        assert clause.direction == "inout"


class TestInsertion:
    def test_inserts_on_omp_loops(self):
        prog = parse(BLACKSCHOLES)
        count = insert_offload_pragmas(prog)
        assert count == 1
        loop = prog.function("main").body.stmts[-1]
        assert isinstance(loop.pragmas[0], ast.OffloadPragma)

    def test_skips_already_offloaded(self):
        prog = parse(
            "void main() {\n"
            "#pragma offload target(mic:0) in(A : length(n)) out(B : length(n))\n"
            "#pragma omp parallel for\n"
            "for (int i = 0; i < n; i++) { B[i] = A[i]; }\n"
            "}"
        )
        assert insert_offload_pragmas(prog) == 0

    def test_skips_serial_loops(self):
        prog = parse("void main() { for (int i = 0; i < n; i++) { B[i] = A[i]; } }")
        assert insert_offload_pragmas(prog) == 0

    def test_printed_output_parses(self):
        prog = parse(BLACKSCHOLES)
        insert_offload_pragmas(prog)
        assert parse(to_source(prog)) == prog


class TestFootprint:
    def test_eval_arithmetic(self):
        assert eval_int_expr(parse_expr("2 * n + 1"), {"n": 10}) == 21

    def test_eval_min_max(self):
        assert eval_int_expr(parse_expr("min(a, b)"), {"a": 3, "b": 7}) == 3
        assert eval_int_expr(parse_expr("max(a, b)"), {"a": 3, "b": 7}) == 7

    def test_eval_unbound_raises(self):
        with pytest.raises(AnalysisError):
            eval_int_expr(parse_expr("n"), {})

    def test_clause_bytes_array(self):
        clause = ast.TransferClause("in", "A", length=parse_expr("n"))
        assert clause_bytes(clause, {"n": 100}, element_size=4) == 400

    def test_clause_bytes_scalar(self):
        clause = ast.TransferClause("in", "x")
        assert clause_bytes(clause, {}, element_size=8) == 8

    def test_offload_footprint_sums_clauses(self):
        pragma = infer_offload_pragma(main_loop(BLACKSCHOLES))
        total = offload_footprint(pragma, {"numOptions": 1000})
        # sptprice + strike + prices arrays plus the numOptions scalar
        assert total == 3 * 4000 + 4

    def test_into_buffers_counted_once(self):
        pragma = ast.OffloadPragma(
            clauses=[
                ast.TransferClause("in", "A", length=parse_expr("b"), into="A1"),
                ast.TransferClause("in", "A", length=parse_expr("b"), into="A1"),
            ]
        )
        assert offload_footprint(pragma, {"b": 10}) == 40
