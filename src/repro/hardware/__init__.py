"""Simulated hardware substrate.

The paper evaluates on a host Xeon E5-2660 plus a Xeon Phi ES2-P/A/X 1750
connected over PCIe.  We replace that testbed with a deterministic timing
simulation:

* :mod:`repro.hardware.spec` — parameter records for the CPU, the MIC and
  the PCIe link, with a preset matching the paper's Section VI setup;
* :mod:`repro.hardware.event_sim` — a resource-timeline event simulator
  that computes start/end times for operations with dependencies, which is
  how transfer/compute overlap (the heart of data streaming) is modelled;
* :mod:`repro.hardware.pcie` — DMA transfer timing, including the
  page-granularity mode used by the MYO baseline;
* :mod:`repro.hardware.device` — roofline-style compute timing for both
  processors from dynamic operation counters;
* :mod:`repro.hardware.memory` — the coprocessor's capacity-limited
  memory manager (no disk, no swap: exceeding capacity raises);
* :mod:`repro.hardware.cache` — the locality factor irregular accesses
  pay on effective memory bandwidth.
"""

from repro.hardware.cache import locality_factor
from repro.hardware.device import ComputeDevice, OpCounters
from repro.hardware.event_sim import Event, Resource, Timeline
from repro.hardware.memory import DeviceMemoryManager
from repro.hardware.pcie import dma_transfer_time, paged_transfer_time
from repro.hardware.spec import (
    CpuSpec,
    MachineSpec,
    MicSpec,
    PcieSpec,
    paper_machine,
)

__all__ = [
    "locality_factor",
    "ComputeDevice",
    "OpCounters",
    "Event",
    "Resource",
    "Timeline",
    "DeviceMemoryManager",
    "dma_transfer_time",
    "paged_transfer_time",
    "CpuSpec",
    "MachineSpec",
    "MicSpec",
    "PcieSpec",
    "paper_machine",
]
