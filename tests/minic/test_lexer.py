"""Tests for the MiniC tokenizer."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import tokenize
from repro.minic.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    PRAGMA,
    STRING_LIT,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == EOF

    def test_identifier(self):
        toks = tokenize("sptprice")
        assert toks[0].kind == IDENT
        assert toks[0].value == "sptprice"

    def test_identifier_with_underscore_and_digits(self):
        toks = tokenize("_buf2_x")
        assert toks[0].kind == IDENT

    def test_keyword(self):
        toks = tokenize("for")
        assert toks[0].kind == KEYWORD

    def test_all_type_keywords(self):
        for kw in ("int", "float", "double", "void", "char"):
            assert tokenize(kw)[0].kind == KEYWORD

    def test_int_literal(self):
        toks = tokenize("42")
        assert toks[0].kind == INT_LIT
        assert toks[0].value == "42"

    def test_float_literal(self):
        toks = tokenize("3.14")
        assert toks[0].kind == FLOAT_LIT

    def test_float_exponent(self):
        toks = tokenize("1e10 2.5E-3 1.0e+2")
        assert [t.kind for t in toks[:-1]] == [FLOAT_LIT] * 3

    def test_float_f_suffix_stripped(self):
        toks = tokenize("2.5f")
        assert toks[0].kind == FLOAT_LIT
        assert toks[0].value == "2.5"

    def test_leading_dot_float(self):
        toks = tokenize(".5")
        assert toks[0].kind == FLOAT_LIT

    def test_string_literal(self):
        toks = tokenize('"hello world"')
        assert toks[0].kind == STRING_LIT
        assert toks[0].value == "hello world"


class TestOperators:
    def test_maximal_munch_arrow(self):
        assert values("p->x") == ["p", "->", "x"]

    def test_maximal_munch_compound_assign(self):
        assert values("a += b") == ["a", "+=", "b"]

    def test_maximal_munch_shift_vs_less(self):
        assert values("a << b < c") == ["a", "<<", "b", "<", "c"]

    def test_increment(self):
        assert values("i++") == ["i", "++"]

    def test_logical_ops(self):
        assert values("a && b || !c") == ["a", "&&", "b", "||", "!", "c"]

    def test_relational(self):
        assert values("a <= b >= c == d != e") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e",
        ]


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_line_numbers_across_block_comment(self):
        toks = tokenize("/* one\ntwo */\nx")
        assert toks[0].line == 3

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_line_tracking(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]


class TestPragmas:
    def test_pragma_captured_as_single_token(self):
        toks = tokenize("#pragma omp parallel for\nfor")
        assert toks[0].kind == PRAGMA
        assert toks[0].value == "omp parallel for"
        assert toks[1].kind == KEYWORD

    def test_offload_pragma_text(self):
        src = "#pragma offload target(mic:0) in(A : length(n))"
        toks = tokenize(src)
        assert toks[0].kind == PRAGMA
        assert "target(mic:0)" in toks[0].value

    def test_pragma_line_continuation(self):
        src = "#pragma offload target(mic:0) \\\n    in(A : length(n))\nx"
        toks = tokenize(src)
        assert toks[0].kind == PRAGMA
        assert "in(A : length(n))" in toks[0].value
        assert toks[1].value == "x"

    def test_non_pragma_directive_rejected(self):
        with pytest.raises(LexError):
            tokenize("#include <stdio.h>")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("a @ b")
        assert exc.value.line == 1

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e+")

    def test_error_reports_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ab\ncd @")
        assert exc.value.line == 2
