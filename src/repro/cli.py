"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE`` — apply the COMP pipeline to a MiniC source file and
  print the transformed source (``--report`` adds what fired and why);
* ``run FILE`` — execute a MiniC program on the simulated machine, with
  arrays/scalars declared on the command line;
* ``bench [NAMES...]`` — run Table II benchmarks (three variants each)
  and print the speedup rows;
* ``faults [NAMES...]`` — run a seeded fault-injection campaign and
  check that recovery preserves bit-identical outputs;
* ``trace FILE`` — execute a program with the observability subsystem
  enabled and export a Perfetto-compatible Chrome trace plus a metrics
  snapshot (see ``docs/observability.md``);
* ``report`` — regenerate the paper's full evaluation (all figures and
  tables);
* ``serve`` — run the campaign service: a long-lived async job runner
  with admission control, a persistent warm worker pool, and a shared
  result store (see ``docs/service.md``);
* ``submit`` — send one job (run/bench/faults) to a running service and
  stream its events back;
* ``replay-trace`` — generate a seeded bursty traffic trace and replay
  it through the service; the summary JSON is byte-identical for any
  worker count.

``run``, ``bench``, and ``faults`` also accept ``--trace FILE`` to write
the same Chrome trace alongside their normal output (multi-run commands
merge each run as its own process lane).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.runtime.executor import ENGINES, Machine, run_program
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.streaming import StreamingOptions

#: Exit code for a fault campaign that was interrupted before every
#: scenario cell ran: the completed cells all honoured the recovery
#: contract, but the sweep is not the full evidence the seed promises.
EXIT_PARTIAL = 3

#: Exit code for a submission the service rejected under backpressure
#: (resubmit after the printed retry-after hint); EX_TEMPFAIL.
EXIT_RETRY = 75

#: Exit code when the campaign service cannot be reached at all
#: (connection refused — wrong port, or no service running); EX_UNAVAILABLE.
EXIT_UNAVAILABLE = 69

#: Exit code for a job that hit its --deadline-seconds wall-clock budget
#: (mirrors the conventional `timeout(1)` exit code).
EXIT_TIMEOUT = 124


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COMP (MICRO 2014) reproduction: compiler optimizations "
        "for manycore offload",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    comp = sub.add_parser("compile", help="optimize a MiniC source file")
    comp.add_argument("file", help="MiniC source path ('-' for stdin)")
    comp.add_argument("--blocks", type=int, default=20,
                      help="streaming block count (default 20)")
    comp.add_argument("--no-streaming", action="store_true")
    comp.add_argument("--no-merging", action="store_true")
    comp.add_argument("--no-regularization", action="store_true")
    comp.add_argument("--no-double-buffer", action="store_true")
    comp.add_argument("--no-thread-reuse", action="store_true")
    comp.add_argument("--report", action="store_true",
                      help="print which optimizations fired")

    runp = sub.add_parser("run", help="execute a MiniC program")
    runp.add_argument("file", help="MiniC source path ('-' for stdin)")
    runp.add_argument("--array", action="append", default=[],
                      metavar="NAME=SIZE[:DTYPE[:KIND]]",
                      help="declare an input array; KIND is zeros|ones|"
                           "arange|random (default random)")
    runp.add_argument("--scalar", action="append", default=[],
                      metavar="NAME=VALUE")
    runp.add_argument("--scale", type=float, default=1.0,
                      help="simulation scale factor")
    runp.add_argument("--seed", type=int, default=0)
    runp.add_argument("--optimize", action="store_true",
                      help="apply the COMP pipeline before running")
    runp.add_argument("--engine", choices=ENGINES, default="auto",
                      help="interpreter engine: generated-numpy codegen, "
                           "batched numpy fast path, or the tree walker; "
                           "auto picks the fastest eligible tier "
                           "(codegen -> batch -> tree, default auto)")
    runp.add_argument("--print-array", action="append", default=[],
                      metavar="NAME", help="print an array's head afterwards")
    runp.add_argument("--inject-faults", action="store_true",
                      help="run under a fault plan derived from --seed "
                           "and report the recovery stats")
    runp.add_argument("--devices", type=int, default=1, metavar="N",
                      help="simulate an offload fleet of N devices with "
                           "block sharding and device-loss failover; "
                           "outputs are bit-identical for any N "
                           "(default 1)")
    runp.add_argument("--trace", metavar="FILE",
                      help="record the run and write a Chrome/Perfetto "
                           "trace JSON to FILE")

    trace = sub.add_parser(
        "trace",
        help="execute a program with tracing enabled and export the trace",
    )
    trace.add_argument("file", help="MiniC source path ('-' for stdin)")
    trace.add_argument("--array", action="append", default=[],
                       metavar="NAME=SIZE[:DTYPE[:KIND]]",
                       help="declare an input array; KIND is zeros|ones|"
                            "arange|random (default random)")
    trace.add_argument("--scalar", action="append", default=[],
                       metavar="NAME=VALUE")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="simulation scale factor")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--optimize", action="store_true",
                       help="apply the COMP pipeline before running")
    trace.add_argument("--engine", choices=ENGINES, default="auto")
    trace.add_argument("--out", metavar="FILE", default="trace.json",
                       help="Chrome/Perfetto trace output path "
                            "(default trace.json)")
    trace.add_argument("--metrics", metavar="FILE",
                       help="also write the metrics snapshot JSON to FILE")
    trace.add_argument("--flame", metavar="FILE",
                       help="also write collapsed-stack flamegraph lines "
                            "to FILE")
    trace.add_argument("--check", action="store_true",
                       help="validate the exported trace against the "
                            "Chrome trace-event schema and fail on problems")

    bench = sub.add_parser("bench", help="run Table II benchmarks")
    bench.add_argument("names", nargs="*", help="benchmark names (default all)")
    bench.add_argument("--engine", choices=ENGINES, default=None,
                       help="interpreter engine for all runs: codegen, "
                            "batch, tree, or auto (default: per-workload)")
    bench.add_argument("--seed", type=int, default=None,
                       help="reseed workload input generation "
                            "(default: fixed per-workload inputs)")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan benchmarks out over N worker processes; "
                            "rows keep their order and values regardless "
                            "of N (default 1, incompatible with --trace)")
    bench.add_argument("--devices", type=int, default=1, metavar="N",
                       help="run every variant on a simulated fleet of N "
                            "offload devices (default 1); results stay "
                            "bit-identical for any N")
    bench.add_argument("--trace", metavar="FILE",
                       help="record every run and write one merged "
                            "Chrome/Perfetto trace JSON to FILE")

    faults = sub.add_parser(
        "faults",
        help="run a seeded fault-injection campaign over the suite",
    )
    faults.add_argument("names", nargs="*",
                        help="benchmark names (default all)")
    faults.add_argument("--scenarios", type=int, default=3,
                        help="fault scenarios per benchmark (default 3)")
    faults.add_argument("--seed", type=int, default=0,
                        help="campaign seed; also reseeds workload inputs")
    faults.add_argument("--variant", choices=("cpu", "mic", "opt"),
                        default="opt")
    faults.add_argument("--engine", choices=ENGINES, default=None,
                        help="interpreter engine for every scenario: "
                             "codegen, batch, tree, or auto "
                             "(default: per-workload)")
    faults.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan scenario cells out over N worker "
                             "processes; per-cell seeds derive from "
                             "--seed, so the summary JSON is byte-"
                             "identical for any N (default 1, "
                             "incompatible with --trace)")
    faults.add_argument("--devices", type=int, default=1, metavar="N",
                        help="run every scenario on a simulated fleet of "
                             "N offload devices with device-loss failover "
                             "(default 1); rate keys may target one card "
                             "with a devK: prefix, e.g. dev1:device")
    faults.add_argument("--rate", action="append", default=[],
                        metavar="SITE=PROB",
                        help="override a fault site's per-operation "
                             "probability (sites: h2d d2h kernel alloc "
                             "signal device arena; silent kinds via "
                             "SITE:KIND, e.g. h2d:silent kernel:sdc; "
                             "prefix devK: to scope a rate to one fleet "
                             "device)")
    faults.add_argument("--list-sites", action="store_true",
                        help="print the site x kind fault taxonomy with "
                             "default rates and exit")
    faults.add_argument("--policy", action="append", default=[],
                        metavar="KEY=VAL",
                        help="override a ResiliencePolicy knob, e.g. "
                             "checkpoint_interval=4, max_resets=2, "
                             "backoff_max=0.002, integrity_mode=full; "
                             "unknown keys are errors")
    faults.add_argument("--out", metavar="FILE",
                        help="write the campaign summary JSON to FILE")
    faults.add_argument("--trace", metavar="FILE",
                        help="record every fault scenario and write one "
                             "merged Chrome/Perfetto trace JSON to FILE")

    tune = sub.add_parser(
        "tune",
        help="profile a program and stream it with the model-chosen block "
        "count (Section III-B)",
    )
    tune.add_argument("file", help="MiniC source path ('-' for stdin)")
    tune.add_argument("--array", action="append", default=[],
                      metavar="NAME=SIZE[:DTYPE[:KIND]]")
    tune.add_argument("--scalar", action="append", default=[],
                      metavar="NAME=VALUE")
    tune.add_argument("--scale", type=float, default=1.0)
    tune.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the campaign service (async job runner over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8753,
                       help="TCP port (0 picks an ephemeral port, "
                            "default 8753)")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="persistent warm worker processes; 0 executes "
                            "jobs inline on the event loop (default 0)")
    serve.add_argument("--max-depth", type=int, default=64, metavar="N",
                       help="hard queue-depth ceiling (default 64)")
    serve.add_argument("--high-water", type=int, default=None, metavar="N",
                       help="queue depth where admission starts rejecting "
                            "with a retry-after hint (default 75%% of "
                            "--max-depth)")
    serve.add_argument("--grace-seconds", type=float, default=30.0,
                       metavar="S",
                       help="on SIGTERM/SIGINT/shutdown, wait this long for "
                            "in-flight jobs before cancelling them "
                            "(default 30)")
    serve.add_argument("--final-stats", action="store_true",
                       help="print a final service snapshot (JSON) after "
                            "the drain completes")
    serve.add_argument("--store-max-entries", type=int, default=None,
                       metavar="N",
                       help="bound the shared result store to N entries "
                            "with LRU eviction (default unbounded)")
    serve.add_argument("--tenant-rate", type=float, default=None,
                       metavar="R",
                       help="per-tenant admission rate limit, jobs/second "
                            "(default off)")
    serve.add_argument("--tenant-burst", type=float, default=4.0,
                       metavar="B",
                       help="per-tenant token-bucket burst capacity "
                            "(default 4)")
    serve.add_argument("--breaker-failures", type=int, default=None,
                       metavar="K",
                       help="open a tenant's circuit breaker after K "
                            "consecutive job failures (default off)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="S",
                       help="seconds an open breaker sheds load before its "
                            "half-open probe (default 30)")
    serve.add_argument("--state-dir", metavar="DIR", default=None,
                       help="durability: write-ahead job journal + "
                            "persistent result store under DIR; restart on "
                            "the same DIR replays the journal and warms "
                            "the store (default off)")
    serve.add_argument("--sync", choices=("always", "batch", "off"),
                       default="batch",
                       help="fsync cadence for the state dir: every append, "
                            "batched, or never (default batch)")

    submit = sub.add_parser(
        "submit",
        help="submit one job to a running campaign service",
    )
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8753)
    submit.add_argument("--kind", choices=("run", "bench", "faults"),
                        default="bench")
    submit.add_argument("--workload", metavar="NAME",
                        help="benchmark name (bench/faults kinds)")
    submit.add_argument("--file", metavar="FILE",
                        help="MiniC source path for --kind run "
                             "('-' for stdin)")
    submit.add_argument("--array", action="append", default=[],
                        metavar="NAME=SIZE[:DTYPE[:KIND]]")
    submit.add_argument("--scalar", action="append", default=[],
                        metavar="NAME=VALUE")
    submit.add_argument("--optimize", action="store_true")
    submit.add_argument("--scale", type=float, default=1.0)
    submit.add_argument("--variant", choices=("cpu", "mic", "opt"),
                        default="opt")
    submit.add_argument("--scenario", type=int, default=0,
                        help="fault scenario index (faults kind)")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--engine", choices=ENGINES, default=None)
    submit.add_argument("--devices", type=int, default=1, metavar="N")
    submit.add_argument("--rate", action="append", default=[],
                        metavar="SITE=PROB",
                        help="fault rate override (faults kind)")
    submit.add_argument("--policy", action="append", default=[],
                        metavar="KEY=VAL",
                        help="ResiliencePolicy override (faults kind)")
    submit.add_argument("--job-trace", action="store_true",
                        help="return the job's Chrome trace events in the "
                             "result payload")
    submit.add_argument("--priority", type=int, default=1,
                        help="scheduling priority, lower runs first "
                             "(default 1)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--deadline-seconds", type=float, default=None,
                        metavar="S",
                        help="server-side wall-clock deadline; past it the "
                             "job ends with a terminal 'timeout' event "
                             "(default none)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="client-side wait in wall seconds "
                             "(default 300)")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry a rejected (backpressure/draining) or "
                             "refused-connection submission up to N times, "
                             "honoring the server's retry_after hint "
                             "(default 0: fail immediately)")
    submit.add_argument("--retry-base", type=float, default=0.25,
                        metavar="S",
                        help="base backoff delay in seconds; attempt k "
                             "waits max(hint, S*2^k), capped at 30s "
                             "(default 0.25)")

    replay = sub.add_parser(
        "replay-trace",
        help="replay a seeded synthetic traffic trace through the service",
    )
    replay.add_argument("--spec", metavar="FILE",
                        help="trace-spec JSON (see docs/service.md); "
                             "flags below are ignored when given")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--requests", type=int, default=24,
                        help="arrivals to generate (default 24)")
    replay.add_argument("--base-rate", type=float, default=2.0,
                        help="baseline arrivals per virtual second "
                             "(default 2.0)")
    replay.add_argument("--burst-factor", type=float, default=5.0,
                        help="rate multiplier during bursts (default 5.0)")
    replay.add_argument("--tenants", type=int, default=3)
    replay.add_argument("--tenant-skew", type=float, default=1.1,
                        help="Zipf exponent of the tenant weights "
                             "(default 1.1)")
    replay.add_argument("--scenarios", type=int, default=2,
                        help="fault scenario pool for chaos jobs "
                             "(default 2)")
    replay.add_argument("--engine", choices=ENGINES, default=None)
    replay.add_argument("--devices", type=int, default=1, metavar="N")
    replay.add_argument("--rate", action="append", default=[],
                        metavar="SITE=PROB",
                        help="fault rates for the chaos job class "
                             "(default: plan defaults)")
    replay.add_argument("--policy", action="append", default=[],
                        metavar="KEY=VAL",
                        help="ResiliencePolicy overrides for chaos jobs")
    replay.add_argument("--model-servers", type=int, default=2, metavar="K",
                        help="abstract servers in the virtual-time queue "
                             "model; part of the spec, NOT the worker "
                             "count (default 2)")
    replay.add_argument("--max-depth", type=int, default=32, metavar="N")
    replay.add_argument("--high-water", type=int, default=None, metavar="N")
    replay.add_argument("--tenant-rate", type=float, default=None,
                        metavar="R",
                        help="virtual-time per-tenant rate limit, "
                             "jobs/second (default off)")
    replay.add_argument("--tenant-burst", type=float, default=4.0,
                        metavar="B",
                        help="per-tenant token-bucket burst (default 4)")
    replay.add_argument("--breaker-failures", type=int, default=None,
                        metavar="K",
                        help="open a tenant's virtual-time breaker after K "
                             "consecutive failed jobs (default off)")
    replay.add_argument("--breaker-cooldown", type=float, default=5.0,
                        metavar="S",
                        help="virtual seconds an open breaker sheds load "
                             "(default 5)")
    replay.add_argument("--workers", type=int, default=0, metavar="N",
                        help="worker processes for the execution phase; "
                             "0 = inline; the summary is byte-identical "
                             "for any value (default 0)")
    replay.add_argument("--kill-workers", type=int, default=0, metavar="N",
                        help="chaos mode: SIGKILL N pool workers while the "
                             "execution phase runs (requires --workers >= "
                             "1); the summary must stay byte-identical")
    replay.add_argument("--state-dir", metavar="DIR", default=None,
                        help="durability: journal the execution phase under "
                             "DIR; a killed replay rerun on the same DIR "
                             "recovers journaled jobs and cached results "
                             "instead of recomputing (default off)")
    replay.add_argument("--sync", choices=("always", "batch", "off"),
                        default="batch",
                        help="fsync cadence for --state-dir (default batch)")
    replay.add_argument("--out", metavar="FILE",
                        help="write the replay summary JSON to FILE")
    replay.add_argument("--trace", metavar="FILE",
                        help="also record every job and write one merged "
                             "Chrome/Perfetto trace JSON to FILE")

    sub.add_parser("report", help="regenerate the paper's evaluation")
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _plan_from_args(args: argparse.Namespace) -> OptimizationPlan:
    return OptimizationPlan(
        streaming=not args.no_streaming,
        merging=not args.no_merging,
        regularization=not args.no_regularization,
        streaming_options=StreamingOptions(
            num_blocks=args.blocks,
            double_buffer=not args.no_double_buffer,
            thread_reuse=not args.no_thread_reuse,
        ),
    )


def _cmd_compile(args: argparse.Namespace) -> int:
    program = parse(_read_source(args.file))
    result = CompOptimizer(_plan_from_args(args)).optimize(program)
    if args.report:
        for report in result.reports:
            status = "applied" if report.applied else f"skipped: {report.reason}"
            print(f"// {report.name}: {status}")
            for detail in report.details:
                print(f"//   {detail}")
    print(to_source(program), end="")
    return 0


def _parse_array_spec(spec: str, rng: np.random.Generator) -> tuple:
    from repro.service.jobs import parse_array_spec

    try:
        return parse_array_spec(spec, rng)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_scalar_spec(spec: str) -> tuple:
    from repro.service.jobs import parse_scalar_spec

    try:
        return parse_scalar_spec(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_inputs(args: argparse.Namespace) -> Tuple[dict, dict]:
    """The (arrays, scalars) bindings of a program-running command."""
    rng = np.random.default_rng(args.seed)
    arrays = dict(_parse_array_spec(s, rng) for s in args.array)
    scalars = dict(_parse_scalar_spec(s) for s in args.scalar)
    return arrays, scalars


def _load_program(args: argparse.Namespace):
    """Parse (and optionally optimize) the command's source file."""
    program = parse(_read_source(args.file))
    if getattr(args, "optimize", False):
        CompOptimizer().optimize(program)
    return program


def _write_merged_trace(path: str, tracers: Sequence[Tuple[str, object]]) -> None:
    """Merge several runs' tracers into one Chrome trace file.

    Each run becomes its own process lane (distinct pid + process name),
    and the combined payload is re-sorted so the file keeps the global
    monotone-timestamp property the validator checks.
    """
    from repro.obs.export import (
        chrome_trace_events,
        sort_trace_events,
        write_chrome_trace,
    )

    events: list = []
    for pid, (label, tracer) in enumerate(tracers):
        events.extend(chrome_trace_events(tracer, pid=pid, process_name=label))
    write_chrome_trace(path, sort_trace_events(events))


def _cmd_run(args: argparse.Namespace) -> int:
    arrays, scalars = _parse_inputs(args)
    program = _load_program(args)
    fault_plan = None
    if args.inject_faults:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan(seed=args.seed)
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    if args.devices < 1:
        raise SystemExit(f"--devices must be >= 1, got {args.devices}")
    machine = Machine(scale=args.scale, fault_plan=fault_plan, tracer=tracer,
                      devices=args.devices)
    result = run_program(program, arrays=arrays, scalars=scalars,
                         machine=machine, engine=args.engine)
    stats = result.stats
    print(f"simulated time      {stats.total_time * 1000:12.3f} ms")
    print(f"device compute      {stats.device_compute_time * 1000:12.3f} ms")
    print(f"transfer (h2d/d2h)  {stats.transfer_to_device_time * 1000:8.3f} / "
          f"{stats.transfer_from_device_time * 1000:.3f} ms")
    print(f"kernel launches     {stats.kernel_launches:6d}  "
          f"signals {stats.kernel_signals}")
    print(f"bytes to device     {stats.bytes_to_device / 2**20:12.2f} MiB")
    print(f"device peak memory  {stats.device_peak_bytes / 2**20:12.2f} MiB")
    if args.inject_faults:
        fs = machine.fault_stats
        print(f"faults injected     {fs.total_injected:6d}  "
              f"retries {fs.retries}  timeouts {fs.timeouts}")
        print(f"recovery time       {fs.recovery_seconds * 1000:12.3f} ms  "
              f"backoff {fs.backoff_seconds * 1000:.3f} ms")
    for name in args.print_array:
        value = result.array(name)
        print(f"{name}[:8] = {np.array2string(value[:8], precision=4)}")
    if args.trace:
        from repro.obs import chrome_trace_events, write_chrome_trace

        write_chrome_trace(args.trace, chrome_trace_events(tracer))
        print(f"trace written to {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.trace import render_summary, summarize
    from repro.obs import (
        Tracer,
        build_provenance,
        chrome_trace_events,
        flamegraph_lines,
        validate_chrome_trace,
        write_chrome_trace,
        write_metrics,
    )

    arrays, scalars = _parse_inputs(args)
    program = _load_program(args)
    tracer = Tracer()
    machine = Machine(scale=args.scale, tracer=tracer)
    run_program(program, arrays=arrays, scalars=scalars,
                machine=machine, engine=args.engine)

    events = chrome_trace_events(tracer)
    write_chrome_trace(args.out, events)
    print(render_summary(summarize(tracer)))
    print(f"\ntrace written to {args.out} "
          f"({len(tracer.spans)} spans, {len(tracer.instants)} instants) — "
          f"load it at https://ui.perfetto.dev or chrome://tracing")
    if args.metrics:
        provenance = build_provenance(seed=args.seed, engine=args.engine)
        write_metrics(args.metrics, tracer.metrics, provenance=provenance)
        print(f"metrics snapshot written to {args.metrics}")
    if args.flame:
        with open(args.flame, "w") as handle:
            for line in flamegraph_lines(tracer.spans):
                handle.write(line + "\n")
        print(f"flamegraph lines written to {args.flame}")
    if args.check:
        problems = validate_chrome_trace(events)
        if problems:
            for problem in problems:
                print(f"trace schema problem: {problem}", file=sys.stderr)
            return 1
        print("trace schema check: ok")
    return 0


def _format_bench_row(name: str, result) -> List[str]:
    return [
        name,
        f"{result.unopt_speedup:8.3f}",
        f"{result.opt_speedup:8.3f}",
        f"{result.relative_gain:8.2f}",
        "ok" if result.outputs_match() else "MISMATCH",
    ]


def _bench_row(
    name: str,
    engine: Optional[str],
    seed: Optional[int],
    devices: int = 1,
) -> List[str]:
    """One benchmark's table row; module-level so pool workers can
    receive it by pickled reference.  Results are deterministic
    functions of (name, engine, seed, devices), so worker count never
    changes a row."""
    from repro.experiments.harness import SuiteRunner

    runner = SuiteRunner(engine=engine, seed=seed, devices=devices)
    return _format_bench_row(name, runner.run_benchmark(name))


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.harness import SuiteRunner
    from repro.experiments.report import render_table
    from repro.workloads.suite import workload_names

    names = args.names or workload_names()
    unknown = set(names) - set(workload_names())
    if unknown:
        raise SystemExit(f"unknown benchmarks: {sorted(unknown)}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.devices < 1:
        raise SystemExit(f"--devices must be >= 1, got {args.devices}")
    if args.jobs > 1 and args.trace:
        raise SystemExit(
            "--trace requires --jobs 1: tracers record in-process and "
            "cannot be merged back from pool workers"
        )
    tracers: list = []
    tracer_factory = None
    if args.trace:
        from repro.obs import Tracer

        def tracer_factory(name: str, variant: str):
            tracer = Tracer()
            tracers.append((f"{name}/{variant}", tracer))
            return tracer

    if args.jobs > 1:
        from repro.faults import campaign as _campaign

        pool = _campaign._POOL_CLS(max_workers=args.jobs)
        wait = True
        try:
            futures = [
                pool.submit(
                    _bench_row, name, args.engine, args.seed, args.devices
                )
                for name in names
            ]
            rows = [future.result() for future in futures]
        except KeyboardInterrupt:
            wait = False
            raise SystemExit("bench interrupted; outstanding runs cancelled")
        finally:
            pool.shutdown(wait=wait, cancel_futures=True)
    else:
        runner = SuiteRunner(
            engine=args.engine,
            seed=args.seed,
            tracer_factory=tracer_factory,
            devices=args.devices,
        )
        rows = [
            _format_bench_row(name, runner.run_benchmark(name))
            for name in names
        ]
    print(render_table(
        ["benchmark", "mic/cpu", "opt/cpu", "opt/mic", "outputs"], rows
    ))
    if args.trace:
        _write_merged_trace(args.trace, tracers)
        print(f"trace written to {args.trace} ({len(tracers)} runs)")
    return 0


def _parse_policy_pairs(specs: Sequence[str]) -> dict:
    """Parse ``KEY=VAL`` policy overrides into a plain dict.

    Values are cast by the type of the field's default (bools accept
    true/false spellings, ``backoff_max`` additionally accepts ``none``);
    unknown keys and unparsable values are command-line errors.
    """
    import dataclasses

    from repro.faults.policy import ResiliencePolicy

    known = {f.name for f in dataclasses.fields(ResiliencePolicy)}
    defaults = ResiliencePolicy()
    overrides: dict = {}
    for spec in specs:
        key, _, raw = spec.partition("=")
        if key not in known or not raw:
            raise SystemExit(
                f"bad --policy spec {spec!r}: expected KEY=VAL with KEY "
                f"one of {sorted(known)}"
            )
        default = getattr(defaults, key)
        try:
            if isinstance(default, bool):
                lowered = raw.lower()
                if lowered in ("1", "true", "yes", "on"):
                    value: object = True
                elif lowered in ("0", "false", "no", "off"):
                    value = False
                else:
                    raise ValueError(raw)
            elif isinstance(default, str):
                value = raw
            elif isinstance(default, int):
                value = int(raw)
            else:  # float-valued knobs; None defaults (backoff_max) too
                value = None if raw.lower() == "none" else float(raw)
        except ValueError:
            raise SystemExit(
                f"bad --policy value in {spec!r}: cannot parse {raw!r} "
                f"for {key} (default {default!r})"
            )
        overrides[key] = value
    return overrides


def _parse_policy_overrides(specs: Sequence[str]):
    """Build a :class:`ResiliencePolicy` from ``KEY=VAL`` overrides.

    An override combination the policy's own validation rejects is a
    command-line error too.
    """
    from repro.faults.policy import ResiliencePolicy

    overrides = _parse_policy_pairs(specs)
    try:
        return ResiliencePolicy(**overrides)
    except ValueError as exc:
        raise SystemExit(f"bad --policy combination: {exc}")


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.report import render_table
    from repro.faults import run_campaign
    from repro.faults.plan import (
        DEFAULT_RATES,
        FAULT_SITES,
        SILENT_KINDS,
        SITE_KINDS,
    )
    from repro.workloads.suite import workload_names

    if args.list_sites:
        rows = []
        for site in FAULT_SITES:
            mixed = SITE_KINDS[site] != SILENT_KINDS.get(site, ())
            for kind in SITE_KINDS[site]:
                silent = kind in SILENT_KINDS.get(site, ())
                key = f"{site}:{kind}" if silent and mixed else site
                rate = DEFAULT_RATES.get(key, 0.0)
                rows.append(
                    [
                        site,
                        kind,
                        "silent" if silent else "announced",
                        key,
                        f"{rate:8.4f}",
                    ]
                )
        print(render_table(
            ["site", "kind", "class", "--rate key", "default"], rows
        ))
        return 0

    names = args.names or workload_names()
    unknown = set(names) - set(workload_names())
    if unknown:
        raise SystemExit(f"unknown benchmarks: {sorted(unknown)}")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.devices < 1:
        raise SystemExit(f"--devices must be >= 1, got {args.devices}")
    if args.jobs > 1 and args.trace:
        raise SystemExit(
            "--trace requires --jobs 1: tracers record in-process and "
            "cannot be merged back from pool workers"
        )
    rates = None
    if args.rate:
        from repro.faults import split_device_key

        rates = {}
        for spec in args.rate:
            key, _, prob = spec.partition("=")
            _, bare = split_device_key(key)
            site, _, kind = bare.partition(":")
            valid = bare in FAULT_SITES or (
                site in FAULT_SITES and kind in SILENT_KINDS.get(site, ())
            )
            if not valid or not prob:
                raise SystemExit(
                    f"bad --rate spec {spec!r}: expected SITE=PROB or "
                    f"SITE:KIND=PROB with SITE in {FAULT_SITES} "
                    f"(silent kinds: "
                    + ", ".join(
                        f"{s}:{k}"
                        for s in FAULT_SITES
                        for k in SILENT_KINDS.get(s, ())
                    )
                    + "; prefix devK: to target one fleet device)"
                )
            rates[key] = float(prob)
    policy = _parse_policy_overrides(args.policy) if args.policy else None
    tracers: list = []
    tracer_factory = None
    if args.trace:
        from repro.obs import Tracer

        def tracer_factory(name: str, scenario: int):
            tracer = Tracer()
            tracers.append((f"{name}/scenario{scenario}", tracer))
            return tracer

    try:
        result = run_campaign(
            names=names,
            scenarios=args.scenarios,
            seed=args.seed,
            variant=args.variant,
            engine=args.engine,
            rates=rates,
            policy=policy,
            tracer_factory=tracer_factory,
            jobs=args.jobs,
            devices=args.devices,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if result.partial:
        done = len(result.outcomes)
        total = len(names) * args.scenarios
        print(
            f"campaign interrupted: {done}/{total} scenario cells "
            "completed; remaining cells were cancelled",
            file=sys.stderr,
        )
    rows = []
    for outcome in result.outcomes:
        slowdown = (
            outcome.time / outcome.baseline_time
            if outcome.baseline_time
            else float("inf")
        )
        rows.append(
            [
                outcome.workload,
                str(outcome.scenario),
                str(outcome.faults_injected),
                str(outcome.stats.retries),
                str(outcome.stats.oom_demotions + outcome.stats.host_fallbacks),
                f"{slowdown:8.4f}",
                ("ok (crashed)" if outcome.error else "ok")
                if outcome.ok else "VIOLATION",
            ]
        )
    print(render_table(
        ["benchmark", "scen", "faults", "retries", "fallbacks",
         "time ratio", "contract"],
        rows,
    ))
    totals = result.totals
    print(f"\ncampaign: {len(result.outcomes)} scenarios, "
          f"{totals.total_injected} faults injected, "
          f"{totals.retries} retries, "
          f"{totals.blocks_replayed} blocks replayed, "
          f"{totals.oom_demotions} demotions, "
          f"{totals.host_fallbacks} host fallbacks")
    if totals.device_resets:
        print(f"device resets: {totals.device_resets} survived, "
              f"{totals.checkpoints_committed} checkpoints committed, "
              f"{totals.blocks_reuploaded} blocks re-uploaded, "
              f"{totals.blocks_recomputed} blocks recomputed")
    if args.devices > 1:
        print(f"fleet ({args.devices} devices): "
              f"{totals.quarantines} quarantines, "
              f"{totals.device_evictions} evictions, "
              f"{totals.readmission_probes} probes, "
              f"{totals.readmissions} readmissions")
        per_device = {
            site: dict(sorted(actions.items()))
            for site, actions in sorted(totals.recovery_actions.items())
            if site.startswith("dev")
        }
        if per_device:
            print("per-device recovery histogram:")
            for site, actions in per_device.items():
                line = ", ".join(f"{k}={v}" for k, v in actions.items())
                print(f"  {site}: {line}")
    if totals.silent_injected:
        print(f"silent corruption: {totals.silent_injected} injected, "
              f"{totals.silent_detected} detected, "
              f"{totals.sdc_escapes} escaped, "
              f"{totals.verifications} verifications, "
              f"{totals.scrubs} scrubs")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"summary written to {args.out}")
    if args.trace:
        _write_merged_trace(args.trace, tracers)
        print(f"trace written to {args.trace} ({len(tracers)} scenarios)")
    if not result.ok:
        print("FAULT CAMPAIGN CONTRACT VIOLATED", file=sys.stderr)
        return 1
    if result.partial:
        # Completed cells all honoured the contract, but the sweep is
        # incomplete evidence — distinct exit code so CI and scripts
        # can't mistake an interrupted campaign for a clean one.
        return EXIT_PARTIAL
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.server import serve

    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if args.grace_seconds < 0:
        raise SystemExit(
            f"--grace-seconds must be >= 0, got {args.grace_seconds}"
        )

    def recovered(recovery: dict) -> None:
        print(f"recovered from {args.state_dir}: "
              f"{recovery['recovered_jobs']} jobs re-admitted, "
              f"{recovery['recovered_results']} results warmed, "
              f"{recovery['dropped_corrupt']} corrupt entries dropped")
        sys.stdout.flush()

    def ready(port: int) -> None:
        mode = (
            f"{args.workers} warm worker processes"
            if args.workers else "inline execution"
        )
        print(f"campaign service listening on {args.host}:{port} ({mode})")
        sys.stdout.flush()

    def final_stats(snapshot: dict) -> None:
        if args.final_stats:
            print(json.dumps(snapshot, sort_keys=True))
            sys.stdout.flush()

    try:
        drained = asyncio.run(serve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_depth=args.max_depth,
            high_water=args.high_water,
            ready=ready,
            grace_seconds=args.grace_seconds,
            final_stats=final_stats,
            store_max_entries=args.store_max_entries,
            tenant_rate=args.tenant_rate,
            tenant_burst=args.tenant_burst,
            breaker_failures=args.breaker_failures,
            breaker_cooldown=args.breaker_cooldown,
            state_dir=args.state_dir,
            sync=args.sync,
            recovered=recovered if args.state_dir else None,
        ))
    except ValueError as exc:
        raise SystemExit(str(exc))
    except KeyboardInterrupt:
        # SIGINT before the loop's signal handler was installed (or a
        # platform without one): still a clean operator stop.
        print("campaign service stopped", file=sys.stderr)
        return 0
    if not drained:
        print(
            f"drain grace of {args.grace_seconds:g}s expired; "
            "cancelled remaining jobs",
            file=sys.stderr,
        )
    print("campaign service drained and stopped", file=sys.stderr)
    return 0


def _job_spec_from_args(args: argparse.Namespace):
    """Build the JobSpec a ``submit`` invocation describes."""
    from repro.service.jobs import JobSpec

    source = None
    if args.kind == "run":
        if not args.file:
            raise SystemExit("--kind run requires --file")
        source = _read_source(args.file)
    rates = []
    for spec in args.rate:
        key, _, prob = spec.partition("=")
        if not prob:
            raise SystemExit(f"bad --rate spec {spec!r}: expected SITE=PROB")
        try:
            rates.append((key, float(prob)))
        except ValueError:
            raise SystemExit(
                f"bad --rate spec {spec!r}: {prob!r} is not a number"
            )
    policy = sorted(_parse_policy_pairs(args.policy).items())
    return JobSpec(
        kind=args.kind,
        workload=args.workload,
        variant=args.variant,
        scenario=args.scenario,
        source=source,
        arrays=tuple(args.array),
        scalars=tuple(args.scalar),
        optimize=args.optimize,
        scale=args.scale,
        seed=args.seed,
        engine=args.engine,
        devices=args.devices,
        rates=tuple(rates),
        policy=tuple(policy),
        trace=args.job_trace,
        priority=args.priority,
        tenant=args.tenant,
        deadline_seconds=args.deadline_seconds,
    )


def _submit_once(args: argparse.Namespace, spec) -> "tuple[int, float]":
    """One submission attempt: ``(exit code, server retry_after hint)``."""
    import json

    from repro.service import server as client

    try:
        events = client.submit(args.host, args.port, spec,
                               timeout=args.timeout)
    except ConnectionRefusedError:
        # The most common operator mistake — no service on that port —
        # gets one clear line and a distinct exit code, not a traceback.
        print(
            f"no campaign service listening at {args.host}:{args.port} "
            "(connection refused); start one with `repro serve`",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE, 0.0
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"cannot reach campaign service at {args.host}:{args.port}: {exc}"
        )
    code = 1  # no terminal event = protocol failure
    retry_hint = 0.0
    for event in events:
        try:
            print(json.dumps(event, sort_keys=True))
        except BrokenPipeError:
            # Downstream (e.g. `head`) closed stdout; the job outcome
            # still decides the exit code.
            sys.stdout = open(os.devnull, "w")
        name = event.get("event")
        if name == "done":
            code = 0 if event.get("ok") else 1
        elif name in ("failed", "error"):
            code = 1
        elif name == "timeout":
            print(
                f"job hit its {event.get('deadline', 0.0)}s deadline",
                file=sys.stderr,
            )
            code = EXIT_TIMEOUT
        elif name == "rejected":
            reason = event.get("reason", "backpressure")
            retry_hint = float(event.get("retry_after", 0.0) or 0.0)
            print(
                f"service rejected the job ({reason}); retry in "
                f"{retry_hint}s",
                file=sys.stderr,
            )
            code = EXIT_RETRY
    return code, retry_hint


def _cmd_submit(args: argparse.Namespace) -> int:
    import time as _time

    if args.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {args.retries}")
    if args.retry_base <= 0:
        raise SystemExit(
            f"--retry-base must be > 0, got {args.retry_base}"
        )
    spec = _job_spec_from_args(args)
    try:
        spec.validate()
    except ValueError as exc:
        raise SystemExit(str(exc))
    attempts = args.retries + 1
    for attempt in range(attempts):
        code, retry_hint = _submit_once(args, spec)
        # Only transient refusals retry: backpressure/draining rejects
        # (75) honor the server's deterministic retry_after hint, and a
        # refused connection (69) covers a service mid-restart.  Real
        # failures — bad specs, failed jobs, deadline timeouts — never
        # burn retries.
        if code not in (EXIT_RETRY, EXIT_UNAVAILABLE):
            return code
        if attempt + 1 >= attempts:
            return code
        delay = min(max(retry_hint, args.retry_base * 2 ** attempt), 30.0)
        print(
            f"retrying in {delay:.3f}s "
            f"(attempt {attempt + 2}/{attempts})",
            file=sys.stderr,
        )
        _time.sleep(delay)
    return code


def _cmd_replay_trace(args: argparse.Namespace) -> int:
    from repro.service.traffic import (
        TraceSpec,
        load_trace_spec,
        replay_trace,
        summary_to_json,
    )

    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if args.kill_workers < 0:
        raise SystemExit(
            f"--kill-workers must be >= 0, got {args.kill_workers}"
        )
    if args.kill_workers and args.workers < 1:
        raise SystemExit(
            "--kill-workers needs a real worker pool: pass --workers >= 1"
        )
    try:
        if args.spec:
            spec = load_trace_spec(args.spec)
            if args.trace and not spec.traced:
                raise ValueError(
                    "--trace needs a spec with traced=true "
                    f"(edit {args.spec} or drop --trace)"
                )
        else:
            rates = []
            for raw in args.rate:
                key, _, prob = raw.partition("=")
                if not prob:
                    raise SystemExit(
                        f"bad --rate spec {raw!r}: expected SITE=PROB"
                    )
                try:
                    rates.append((key, float(prob)))
                except ValueError:
                    raise SystemExit(
                        f"bad --rate spec {raw!r}: {prob!r} is not a number"
                    )
            spec = TraceSpec(
                seed=args.seed,
                requests=args.requests,
                base_rate=args.base_rate,
                burst_factor=args.burst_factor,
                tenants=args.tenants,
                tenant_skew=args.tenant_skew,
                scenarios=args.scenarios,
                engine=args.engine,
                devices=args.devices,
                rates=tuple(rates),
                policy=tuple(sorted(_parse_policy_pairs(args.policy).items())),
                traced=bool(args.trace),
                model_servers=args.model_servers,
                max_depth=args.max_depth,
                high_water=args.high_water,
                tenant_rate=args.tenant_rate,
                tenant_burst=args.tenant_burst,
                breaker_failures=args.breaker_failures,
                breaker_cooldown=args.breaker_cooldown,
            )
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        summary = replay_trace(
            spec,
            workers=args.workers,
            trace_out=args.trace,
            metrics=metrics,
            kill_workers=args.kill_workers,
            state_dir=args.state_dir,
            sync=args.sync,
        )
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    queue = summary["queue"]
    print(f"replayed {len(summary['arrivals'])} arrivals "
          f"({queue['unique_jobs']} unique jobs, "
          f"{queue['duplicates']} served from cache, "
          f"{queue['rejected']} rejected, "
          f"{queue['gated']} tenant-gated)")
    print(f"virtual queue ({queue['model_servers']} servers): "
          f"p50 {queue['p50_latency'] * 1000:.3f} ms, "
          f"p95 {queue['p95_latency'] * 1000:.3f} ms, "
          f"utilization {queue['utilization']:.3f}")
    for kind in sorted(summary["classes"]):
        cls = summary["classes"][kind]
        print(f"  class {kind:7s} {cls['arrivals']:4d} arrivals, "
              f"{cls['rejected']} rejected, "
              f"{cls['sim_time'] * 1000:10.3f} ms simulated")
    if summary["faults"]:
        totals = summary["faults"]
        print(f"chaos: {totals.get('total_injected', 0):.0f} faults injected, "
              f"{totals.get('retries', 0):.0f} retries, "
              f"{totals.get('sdc_escapes', 0):.0f} SDC escapes")
    if args.kill_workers:
        # Live supervision telemetry: proof the kills actually landed
        # (and were absorbed).  Deliberately outside the summary — the
        # summary must stay byte-identical to an undisturbed replay.
        snap = metrics.snapshot()["counters"]
        print(f"supervisor: "
              f"{snap.get('service.supervisor.worker_failures', 0):.0f} "
              f"worker failures, "
              f"{snap.get('service.supervisor.restarts', 0):.0f} restarts, "
              f"{snap.get('service.supervisor.redispatches', 0):.0f} "
              f"redispatches, "
              f"{snap.get('service.supervisor.quarantined', 0):.0f} "
              f"quarantined")
    if args.state_dir:
        # Durability telemetry: how much a crash-restart brought back.
        # Outside the summary for the same reason as the supervisor
        # line — the summary is byte-identical with or without it.
        print(f"durability: "
              f"{metrics.counter_value('service.durability.recovered_jobs'):.0f} "
              f"jobs re-admitted, "
              f"{metrics.counter_value('service.durability.recovered_results'):.0f} "
              f"results recovered, "
              f"{metrics.counter_value('service.durability.dropped_corrupt'):.0f} "
              f"corrupt entries dropped")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(summary_to_json(summary))
        print(f"summary written to {args.out}")
    if args.trace:
        print(f"trace written to {args.trace}")
    print(f"determinism digest: {summary['digest']}")
    if not summary["ok"]:
        print("REPLAY CONTRACT VIOLATED", file=sys.stderr)
        return 1
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    from repro.experiments import figures as figs
    from repro.experiments.harness import SuiteRunner
    from repro.experiments.report import render_figure, render_table_data
    from repro.experiments.tables import table1_demo, table2, table3

    runner = SuiteRunner()
    print(render_table_data(table1_demo()))
    print()
    for figure, log in (
        (figs.figure1, False),
        (figs.figure4, False),
        (figs.figure10, False),
        (figs.figure11, True),
        (figs.figure12, False),
        (figs.figure13, False),
        (figs.figure14, True),
        (figs.figure15, False),
    ):
        print(render_figure(figure(runner), log=log))
        print()
    print(render_table_data(table2(runner)))
    print()
    print(render_table_data(table3(runner)))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.transforms.autotune import tune_streaming

    source = _read_source(args.file)
    rng = np.random.default_rng(args.seed)
    array_specs = [_parse_array_spec(s, rng) for s in args.array]
    scalars = dict(_parse_scalar_spec(s) for s in args.scalar)

    def arrays_factory():
        return {name: value.copy() for name, value in array_specs}

    program, profile = tune_streaming(
        source, arrays_factory, scalars, scale=args.scale
    )
    tuned = run_program(
        program, arrays=arrays_factory(), scalars=dict(scalars),
        machine=Machine(scale=args.scale),
    )
    print(f"// profiled D={profile.measured_transfer * 1000:.3f} ms, "
          f"C={profile.measured_compute * 1000:.3f} ms, "
          f"K={profile.launch_overhead * 1000:.3f} ms")
    print(f"// model-selected block count N* = {profile.num_blocks}")
    print(f"// unoptimized {profile.profile_time * 1000:.3f} ms -> "
          f"tuned {tuned.stats.total_time * 1000:.3f} ms "
          f"({profile.profile_time / tuned.stats.total_time:.2f}x)")
    print(to_source(program), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "compile": _cmd_compile,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "faults": _cmd_faults,
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "replay-trace": _cmd_replay_trace,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
