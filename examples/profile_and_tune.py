#!/usr/bin/env python
"""Profile-guided streaming: the Section III-B model, closed into a loop.

The paper derives the optimal streaming block count N* from the loop's
transfer time D, compute time C and the launch overhead K, then sweeps N
experimentally.  This example does what a profile-guided compiler would:

1. run the unoptimized offload once to measure D and C,
2. let the model pick N*,
3. re-transform with that N, and
4. verify against a brute-force sweep — and show the trace overlap
   the tuned pipeline achieves.

Run:  python examples/profile_and_tune.py
"""

import dataclasses

import numpy as np

from repro.experiments.trace import render_summary, summarize
from repro.minic.parser import parse
from repro.runtime.executor import Machine, run_program
from repro.transforms.autotune import tune_streaming
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.streaming import StreamingOptions

SOURCE = """
void main() {
#pragma offload target(mic:0) in(samples : length(n)) in(n) out(filtered : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        float s = samples[i];
        filtered[i] = sqrt(s * s + 1.0) * 0.5 + log(s + 2.0);
    }
}
"""

N = 2048
SCALE = 40_000_000 / N  # a 40M-sample signal


def arrays():
    rng = np.random.default_rng(9)
    return {
        "samples": (rng.random(N) + 0.1).astype(np.float32),
        "filtered": np.zeros(N, dtype=np.float32),
    }


def timed(program_or_source):
    machine = Machine(scale=SCALE)
    run_program(
        program_or_source, arrays=arrays(), scalars={"n": N}, machine=machine
    )
    return machine


def main() -> None:
    program, profile = tune_streaming(SOURCE, arrays, {"n": N}, scale=SCALE)
    print(f"profile: D = {profile.measured_transfer * 1000:.2f} ms, "
          f"C = {profile.measured_compute * 1000:.2f} ms, "
          f"K = {profile.launch_overhead * 1000:.2f} ms")
    print(f"model-selected block count: N* = {profile.num_blocks}\n")

    tuned_machine = timed(program)
    baseline = profile.profile_time
    tuned = tuned_machine.clock.now

    print(f"{'N':>6s}  {'time':>12s}")
    print(f"{'(none)':>6s}  {baseline * 1000:10.2f} ms   (unoptimized)")
    for n_blocks in (2, 5, 10, 20, 40, 80):
        candidate = parse(SOURCE)
        CompOptimizer(
            OptimizationPlan(
                streaming_options=StreamingOptions(num_blocks=n_blocks)
            )
        ).optimize(candidate)
        t = timed(candidate).clock.now
        marker = "  <- N*" if n_blocks == min(
            (2, 5, 10, 20, 40, 80), key=lambda x: abs(x - profile.num_blocks)
        ) else ""
        print(f"{n_blocks:6d}  {t * 1000:10.2f} ms{marker}")
    print(f"{'N*':>6s}  {tuned * 1000:10.2f} ms   (model-tuned, "
          f"{baseline / tuned:.2f}x)\n")

    print("trace of the tuned pipeline:")
    print(render_summary(summarize(tuned_machine.timeline)))


if __name__ == "__main__":
    main()
