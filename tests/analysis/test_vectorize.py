"""Tests for the vectorizability analysis."""

from repro.analysis.vectorize import innermost_loops, is_vectorizable
from repro.minic.parser import parse


def main_loop(body, init="int i = 0", cond="i < n", step="i++"):
    src = f"void main() {{ for ({init}; {cond}; {step}) {{ {body} }} }}"
    return parse(src).function("main").body.stmts[0]


class TestIsVectorizable:
    def test_unit_stride(self):
        assert is_vectorizable(main_loop("B[i] = A[i] * 2.0;"))

    def test_offset_unit_stride(self):
        assert is_vectorizable(main_loop("B[i] = A[i + 4];"))

    def test_invariant_broadcast(self):
        assert is_vectorizable(main_loop("B[i] = A[0] + A[i];"))

    def test_masked_control_flow_allowed(self):
        assert is_vectorizable(
            main_loop("if (A[i] > 0.0) { B[i] = A[i]; } else { B[i] = 0.0; }")
        )

    def test_gather_blocks(self):
        assert not is_vectorizable(main_loop("B[i] = A[C[i]];"))

    def test_stride_blocks(self):
        assert not is_vectorizable(main_loop("B[i] = A[4 * i];"))

    def test_aos_blocks(self):
        assert not is_vectorizable(main_loop("B[i] = P[i].x;"))

    def test_nonlinear_blocks(self):
        assert not is_vectorizable(main_loop("B[i] = A[i * i];"))

    def test_no_accesses_not_vectorizable(self):
        assert not is_vectorizable(main_loop("s = s + 1.0;"))

    def test_reduction_is_vectorizable(self):
        assert is_vectorizable(main_loop("acc += A[i];"))


class TestNestedLoops:
    def test_row_major_inner_loop(self):
        """temp[i * cols + j] is unit-stride in j given cols."""
        loop = main_loop(
            "for (int j = 0; j < cols; j++) { B[i * cols + j] = A[i * cols + j]; }"
        )
        assert is_vectorizable(loop, {"cols": 64})

    def test_column_major_inner_loop_blocks(self):
        loop = main_loop(
            "for (int j = 0; j < rows; j++) { B[j * cols + i] = 0.0; }"
        )
        assert not is_vectorizable(loop, {"cols": 64})

    def test_inner_loop_with_local_index_blocks(self):
        """CG's SpMV shape: the gather index is an inner-loop local."""
        loop = main_loop(
            "float s = 0.0;"
            " for (int j = S[i]; j < S[i + 1]; j++) { s += V[j] * x[K[j]]; }"
            " q[i] = s;"
        )
        assert not is_vectorizable(loop, {"n": 64})

    def test_innermost_loops_helper(self):
        loop = main_loop(
            "for (int j = 0; j < m; j++) { A[j] = 0.0; }"
            " for (int k = 0; k < m; k++) { B[k] = 0.0; }"
        )
        inner = innermost_loops(loop)
        assert len(inner) == 2

    def test_flat_loop_is_its_own_innermost(self):
        loop = main_loop("A[i] = 0.0;")
        assert innermost_loops(loop) == [loop]

    def test_all_innermost_must_qualify(self):
        loop = main_loop(
            "for (int j = 0; j < m; j++) { A[j] = 0.0; }"
            " for (int k = 0; k < m; k++) { B[C[k]] = 0.0; }"
        )
        assert not is_vectorizable(loop)


class TestBindings:
    def test_symbolic_coefficient_without_binding_blocks(self):
        loop = main_loop("B[i] = A[i * w];")
        assert not is_vectorizable(loop)

    def test_unit_symbolic_offset_with_binding(self):
        loop = main_loop("B[i] = A[i + base];")
        assert is_vectorizable(loop, {"base": 10})
