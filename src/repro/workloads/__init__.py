"""The twelve evaluation workloads (Table II).

Each module recreates one benchmark's *loop and data-structure shape* —
the property COMP's optimizations key off — as a MiniC program (or, for
the two pointer-based benchmarks, a Python driver over the shared-memory
runtimes).  See DESIGN.md for the substitution rationale.

=============  ========  ==========================================
Benchmark      Suite     Applicable optimizations (Table II)
=============  ========  ==========================================
blackscholes   PARSEC    streaming (1.54x)
streamcluster  PARSEC    streaming (1.34x), merging (38.89x)
ferret         PARSEC    shared memory (7.81x)
dedup          PARSEC    none — data streaming already hand-coded
freqmine       PARSEC    shared memory (1.16x)
kmeans         Phoenix   streaming (1.95x)
CG             NAS       streaming (1.28x), merging (18.53x)
cfd            Rodinia   merging (27.19x)
nn             Rodinia   streaming (1.24x), regularization (1.23x)
srad           Rodinia   regularization (1.25x)
bfs            Rodinia   none
hotspot        Rodinia   none
=============  ========  ==========================================
"""

from repro.workloads.base import (
    MiniCWorkload,
    SharedMemoryWorkload,
    Workload,
    WorkloadRun,
)
from repro.workloads.suite import SUITE, get_workload, workload_names

__all__ = [
    "MiniCWorkload",
    "SharedMemoryWorkload",
    "Workload",
    "WorkloadRun",
    "SUITE",
    "get_workload",
    "workload_names",
]
