"""Tests for the Chrome-trace, flamegraph, and metrics exporters."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    flamegraph_lines,
    metrics_snapshot,
    sort_trace_events,
    utilization,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _sample_tracer():
    tracer = Tracer()
    outer = tracer.begin("offload", "cpu", 0.0)
    tracer.span("h2d:A", "dma:h2d", 0.0, 0.002, nbytes=4096)
    tracer.span("kernel", "mic", 0.001, 0.004)
    tracer.end(outer, 0.005)
    tracer.instant("fault:h2d", 0.0015, track="cpu", kind="transient")
    return tracer


class TestChromeTrace:
    def test_events_shape(self):
        events = chrome_trace_events(_sample_tracer(), pid=3, process_name="p")
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in meta} >= {"process_name", "thread_name"}
        assert all(e["pid"] == 3 for e in events)
        assert len(xs) == 3
        assert len(instants) == 1
        # simulated seconds -> microseconds
        h2d = next(e for e in xs if e["name"] == "h2d:A")
        assert h2d["ts"] == pytest.approx(0.0)
        assert h2d["dur"] == pytest.approx(2000.0)
        assert h2d["args"]["nbytes"] == 4096

    def test_tracks_become_named_threads(self):
        events = chrome_trace_events(_sample_tracer())
        names = [
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert names[:3] == ["cpu", "mic", "dma:h2d"]

    def test_payload_is_monotone_and_valid(self):
        events = chrome_trace_events(_sample_tracer())
        assert validate_chrome_trace(events) == []

    def test_merged_runs_revalidate_after_sort(self):
        a = chrome_trace_events(_sample_tracer(), pid=0)
        b = chrome_trace_events(_sample_tracer(), pid=1)
        merged = sort_trace_events(a + b)
        assert validate_chrome_trace(merged) == []

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), chrome_trace_events(_sample_tracer()))
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(payload["traceEvents"]) == []


class TestValidator:
    def test_flags_negative_ts(self):
        bad = [{"ph": "X", "name": "a", "ts": -1.0, "dur": 1.0}]
        assert any("negative ts" in p for p in validate_chrome_trace(bad))

    def test_flags_non_monotone_ts(self):
        bad = [
            {"ph": "X", "name": "a", "ts": 5.0, "dur": 1.0},
            {"ph": "X", "name": "b", "ts": 1.0, "dur": 1.0},
        ]
        assert any("monotonicity" in p for p in validate_chrome_trace(bad))

    def test_flags_bad_duration(self):
        bad = [{"ph": "X", "name": "a", "ts": 0.0, "dur": -2.0}]
        assert any("duration" in p for p in validate_chrome_trace(bad))

    def test_flags_unbalanced_begin_end(self):
        bad = [{"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 1}]
        assert any("unclosed" in p for p in validate_chrome_trace(bad))
        bad = [{"ph": "E", "name": "a", "ts": 0.0, "pid": 0, "tid": 1}]
        assert any("no matching B" in p for p in validate_chrome_trace(bad))

    def test_balanced_begin_end_passes(self):
        ok = [
            {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 1},
            {"ph": "E", "name": "a", "ts": 1.0, "pid": 0, "tid": 1},
        ]
        assert validate_chrome_trace(ok) == []


class TestAggregation:
    def test_utilization_per_track(self):
        report = utilization(_sample_tracer().spans)
        assert report["makespan"] == pytest.approx(0.005)
        assert report["tracks"]["cpu"]["utilization"] == pytest.approx(1.0)
        assert report["tracks"]["mic"]["busy"] == pytest.approx(0.003)

    def test_flamegraph_self_time(self):
        lines = flamegraph_lines(_sample_tracer().spans)
        weights = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        # offload: 5 ms total minus 2 ms + 3 ms of children = 0 self.
        assert weights["cpu;offload"] == 0
        assert weights["cpu;offload;h2d:A"] == 2000
        assert weights["cpu;offload;kernel"] == 3000


class TestMetricsSnapshot:
    def test_provenance_block_leads(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        snap = metrics_snapshot(reg, provenance={"git_sha": "abc"})
        assert list(snap)[0] == "provenance"
        assert snap["counters"]["c"] == 1

    def test_write_metrics_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        reg = MetricsRegistry()
        reg.counter("dma.bytes").inc(4096)
        write_metrics(str(path), reg, provenance={"seed": 7})
        payload = json.loads(path.read_text())
        assert payload["provenance"]["seed"] == 7
        assert payload["counters"]["dma.bytes"] == 4096
