"""Concurrency tests for the SuiteRunner run cache.

The campaign service keeps warm :class:`SuiteRunner` instances shared
across pool threads, so the run cache must compute each variant exactly
once under concurrent identical requests and account every lookup in
its hit/miss counters.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.experiments.harness import SuiteRunner
from repro.obs.metrics import MetricsRegistry


class TestRunCacheConcurrency:
    def test_hammered_variant_computes_once(self):
        metrics = MetricsRegistry()
        runner = SuiteRunner(metrics=metrics)
        threads = 8

        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [
                pool.submit(runner.run_variant, "blackscholes", "opt")
                for _ in range(threads)
            ]
            runs = [f.result() for f in futures]

        first = runs[0]
        assert all(r is first for r in runs)  # one shared object, one compute
        hits, misses, size = runner.cache_stats()
        assert misses == 1
        assert hits == threads - 1
        assert size == 1

    def test_counters_surface_through_metrics_registry(self):
        metrics = MetricsRegistry()
        runner = SuiteRunner(metrics=metrics)
        runner.run_variant("blackscholes", "opt")
        runner.run_variant("blackscholes", "opt")

        counters = metrics.snapshot()["counters"]
        assert counters["harness.cache.misses"] == 1
        assert counters["harness.cache.hits"] == 1

    def test_distinct_variants_do_not_serialize_counts(self):
        runner = SuiteRunner()
        with ThreadPoolExecutor(max_workers=2) as pool:
            a = pool.submit(runner.run_variant, "blackscholes", "cpu")
            b = pool.submit(runner.run_variant, "blackscholes", "mic")
            a.result(), b.result()
        hits, misses, size = runner.cache_stats()
        assert (hits, misses, size) == (0, 2, 2)

    def test_cache_works_without_metrics(self):
        runner = SuiteRunner()
        runner.run_variant("nn", "opt")
        runner.run_variant("nn", "opt")
        assert runner.cache_stats() == (1, 1, 1)
