"""COMP's source-to-source transformations (the paper's contribution).

* :mod:`repro.transforms.streaming` — data streaming (Section III):
  blocked, pipelined transfers with optional double-buffering (the
  memory-usage optimization) and thread reuse;
* :mod:`repro.transforms.block_size` — the analytic block-count model of
  Section III-B;
* :mod:`repro.transforms.merge_offload` — offload merging (Section III-C);
* :mod:`repro.transforms.thread_reuse` — persistent-kernel marking;
* :mod:`repro.transforms.regularize` — array reordering and loop
  splitting (Section IV);
* :mod:`repro.transforms.aos_to_soa` — array-of-structures conversion;
* :mod:`repro.transforms.shared_memory` — malloc-to-arena lowering
  (Section V);
* :mod:`repro.transforms.pipeline` — the COMP driver that decides which
  optimizations apply to each loop (the basis of Table II).
"""

from repro.transforms.aos_to_soa import convert_aos_to_soa, soa_arrays
from repro.transforms.base import TransformReport, fresh_name
from repro.transforms.block_size import (
    optimal_block_count,
    streaming_time,
    unstreamed_time,
)
from repro.transforms.merge_offload import merge_offloads
from repro.transforms.pipeline import CompOptimizer, OptimizationPlan
from repro.transforms.regularize import reorder_arrays, split_loop
from repro.transforms.shared_memory import lower_shared_memory
from repro.transforms.streaming import StreamingOptions, apply_streaming
from repro.transforms.thread_reuse import apply_thread_reuse

__all__ = [
    "convert_aos_to_soa",
    "soa_arrays",
    "TransformReport",
    "fresh_name",
    "optimal_block_count",
    "streaming_time",
    "unstreamed_time",
    "merge_offloads",
    "CompOptimizer",
    "OptimizationPlan",
    "reorder_arrays",
    "split_loop",
    "lower_shared_memory",
    "StreamingOptions",
    "apply_streaming",
    "apply_thread_reuse",
]
