"""Tests for the resource-timeline event simulator."""

import pytest

from repro.hardware.event_sim import Clock, Event, Timeline


class TestScheduling:
    def test_single_op(self):
        tl = Timeline()
        ev = tl.schedule("device", 2.0, label="kernel")
        assert ev.time == 2.0

    def test_fifo_on_same_resource(self):
        tl = Timeline()
        tl.schedule("device", 2.0)
        ev = tl.schedule("device", 3.0)
        assert ev.time == 5.0

    def test_independent_resources_overlap(self):
        tl = Timeline()
        a = tl.schedule("dma", 4.0)
        b = tl.schedule("device", 3.0)
        assert a.time == 4.0
        assert b.time == 3.0
        assert tl.finish_time() == 4.0

    def test_dependency_delays_start(self):
        tl = Timeline()
        transfer = tl.schedule("dma", 4.0)
        compute = tl.schedule("device", 1.0, deps=[transfer])
        assert compute.time == 5.0

    def test_not_before(self):
        tl = Timeline()
        ev = tl.schedule("dma", 1.0, not_before=10.0)
        assert ev.time == 11.0

    def test_negative_duration_rejected(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.schedule("device", -1.0)

    def test_streaming_pipeline_shape(self):
        """The paper's Figure 5(d): block i computes while block i+1 transfers.

        With equal block transfer time D/N and compute time C/N, the total
        is D/N + max(C/N, D/N)*(N-1) + C/N.
        """
        tl = Timeline()
        n_blocks, d_block, c_block = 4, 1.0, 1.5
        transfers = []
        prev_compute = None
        for k in range(n_blocks):
            transfers.append(tl.schedule("dma", d_block, label=f"xfer{k}"))
        for k in range(n_blocks):
            deps = [transfers[k]]
            if prev_compute is not None:
                deps.append(prev_compute)
            prev_compute = tl.schedule("device", c_block, deps=deps)
        expected = d_block + max(c_block, d_block) * (n_blocks - 1) + c_block
        assert prev_compute.time == pytest.approx(expected)

    def test_transfer_bound_pipeline(self):
        tl = Timeline()
        n_blocks, d_block, c_block = 5, 2.0, 0.5
        prev = None
        for k in range(n_blocks):
            xfer = tl.schedule("dma", d_block)
            deps = [xfer] + ([prev] if prev else [])
            prev = tl.schedule("device", c_block, deps=deps)
        expected = d_block * n_blocks + c_block
        assert prev.time == pytest.approx(expected)


class TestTrace:
    def test_busy_time(self):
        tl = Timeline()
        tl.schedule("device", 2.0)
        tl.schedule("device", 3.0)
        tl.schedule("dma", 1.0)
        assert tl.busy_time("device") == 5.0
        assert tl.busy_time("dma") == 1.0

    def test_entries_filtered(self):
        tl = Timeline()
        tl.schedule("device", 1.0, label="a")
        tl.schedule("dma", 1.0, label="b")
        assert [e.label for e in tl.entries("dma")] == ["b"]

    def test_reset(self):
        tl = Timeline()
        tl.schedule("device", 5.0)
        tl.reset()
        assert tl.finish_time() == 0.0
        assert tl.schedule("device", 1.0).time == 1.0

    def test_empty_finish_time(self):
        assert Timeline().finish_time() == 0.0


class TestClock:
    def test_advance(self):
        clock = Clock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_wait_future_event(self):
        clock = Clock(now=1.0)
        clock.wait_until(Event(5.0))
        assert clock.now == 5.0

    def test_wait_past_event_free(self):
        clock = Clock(now=10.0)
        clock.wait_until(Event(5.0))
        assert clock.now == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1.0)
