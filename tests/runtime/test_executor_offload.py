"""Interpreter tests for LEO offload semantics on the simulated machine."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemory, MissingTransferError
from repro.hardware.spec import CpuSpec, MachineSpec, MicSpec, PcieSpec
from repro.runtime.executor import Machine, run_program

OFFLOAD_SRC = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def make_arrays(n=256):
    return {
        "A": np.arange(n, dtype=np.float32),
        "B": np.zeros(n, dtype=np.float32),
    }


class TestOffloadCorrectness:
    def test_results_copied_back(self):
        result = run_program(OFFLOAD_SRC, arrays=make_arrays(), scalars={"n": 256})
        assert np.array_equal(result.array("B"), np.arange(256) * 2.0)

    def test_missing_in_clause_raises(self):
        src = OFFLOAD_SRC.replace("in(A : length(n)) ", "")
        with pytest.raises(MissingTransferError):
            run_program(src, arrays=make_arrays(), scalars={"n": 256})

    def test_missing_scalar_clause_raises(self):
        src = OFFLOAD_SRC.replace("in(n) ", "")
        with pytest.raises(MissingTransferError):
            run_program(src, arrays=make_arrays(), scalars={"n": 256})

    def test_inout_clause(self):
        src = """
        void main() {
        #pragma offload target(mic:0) inout(A : length(n)) in(n)
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; }
        }
        """
        result = run_program(
            src, arrays={"A": np.zeros(64, dtype=np.float32)}, scalars={"n": 64}
        )
        assert np.all(result.array("A") == 1.0)

    def test_scalar_reduction_out(self):
        src = """
        void main() {
            float sum = 0.0;
        #pragma offload target(mic:0) in(A : length(n)) in(n) inout(sum)
        #pragma omp parallel for reduction(+:sum)
            for (int i = 0; i < n; i++) { sum += A[i]; }
            total = sum;
        }
        """
        result = run_program(
            src, arrays={"A": np.ones(100, dtype=np.float32)}, scalars={"n": 100}
        )
        assert result.scalar("total") == 100.0

    def test_section_transfer(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A[10:20] : into(A1)) in(n) out(B[0:20] : length(20))
        #pragma omp parallel for
            for (int i = 0; i < 20; i++) { B[i] = A1[i]; }
        }
        """
        arrays = {
            "A": np.arange(100, dtype=np.float32),
            "B": np.zeros(100, dtype=np.float32),
        }
        result = run_program(src, arrays=arrays, scalars={"n": 20})
        assert np.array_equal(result.array("B")[:20], np.arange(10, 30))

    def test_offload_block_serial_device_code(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(4)) out(A : length(4))
            {
                A[0] = A[1] + A[2];
            }
        }
        """
        result = run_program(
            src, arrays={"A": np.array([0, 2, 3, 4], dtype=np.float32)}
        )
        assert result.array("A")[0] == 5.0

    def test_device_cannot_see_untransferred_host_update(self):
        """Device reads the copy made at transfer time, not live host data."""
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(4)) out(B : length(4))
        #pragma omp parallel for
            for (int i = 0; i < 4; i++) { B[i] = A[i]; }
        }
        """
        a = np.ones(4, dtype=np.float32)
        result = run_program(
            src, arrays={"A": a, "B": np.zeros(4, dtype=np.float32)}
        )
        assert np.all(result.array("B") == 1.0)


class TestOffloadTiming:
    def test_offload_pays_transfer_and_launch(self):
        machine = Machine()
        result = run_program(OFFLOAD_SRC, arrays=make_arrays(), scalars={"n": 256},
                             machine=machine)
        stats = result.stats
        assert stats.kernel_launches == 1
        assert stats.bytes_to_device >= 256 * 4
        assert stats.bytes_from_device >= 256 * 4
        assert stats.total_time >= machine.spec.mic.kernel_launch_overhead

    def test_transfer_scales_with_scale(self):
        small = run_program(
            OFFLOAD_SRC, arrays=make_arrays(), scalars={"n": 256},
            machine=Machine(scale=1.0),
        ).stats
        big = run_program(
            OFFLOAD_SRC, arrays=make_arrays(), scalars={"n": 256},
            machine=Machine(scale=1000.0),
        ).stats
        assert big.bytes_to_device == pytest.approx(1000 * small.bytes_to_device)

    def test_unopt_offload_frees_buffers(self):
        machine = Machine()
        run_program(OFFLOAD_SRC, arrays=make_arrays(), scalars={"n": 256},
                    machine=machine)
        assert machine.device_memory.in_use == 0
        assert machine.device_memory.peak >= 2 * 256 * 4

    def test_device_oom(self):
        # 1M floats at scale 4096 = 16 GB > the 7.5 GB usable capacity.
        machine = Machine(scale=4096.0)
        n = 1 << 20
        with pytest.raises(DeviceOutOfMemory):
            run_program(
                OFFLOAD_SRC,
                arrays={
                    "A": np.zeros(n, dtype=np.float32),
                    "B": np.zeros(n, dtype=np.float32),
                },
                scalars={"n": n},
                machine=machine,
            )

    def test_two_offloads_two_launches(self):
        src = """
        void main() {
        #pragma offload target(mic:0) in(A : length(8)) out(A : length(8))
        #pragma omp parallel for
            for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }
        #pragma offload target(mic:0) in(A : length(8)) out(A : length(8))
        #pragma omp parallel for
            for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }
        }
        """
        machine = Machine()
        result = run_program(
            src, arrays={"A": np.zeros(8, dtype=np.float32)}, machine=machine
        )
        assert result.stats.kernel_launches == 2
        assert np.all(result.array("A") == 2.0)

    def test_persistent_offload_single_launch(self):
        src = """
        void main() {
            for (int k = 0; k < 5; k++) {
        #pragma offload target(mic:0) in(A : length(8) alloc_if(k == 0) free_if(k == 4)) out(A : length(8) alloc_if(0) free_if(0)) persistent(1)
        #pragma omp parallel for
                for (int i = 0; i < 8; i++) { A[i] = A[i] + 1.0; }
            }
        }
        """
        machine = Machine()
        result = run_program(
            src, arrays={"A": np.zeros(8, dtype=np.float32)}, machine=machine
        )
        assert result.stats.kernel_launches == 1
        assert result.stats.kernel_signals == 4
        assert np.all(result.array("A") == 5.0)


class TestAsyncTransfers:
    STREAMED = """
    void main() {
    #pragma offload_transfer target(mic:0) nocopy(A1 : length(b) alloc_if(1) free_if(0)) nocopy(A2 : length(b) alloc_if(1) free_if(0)) nocopy(B1 : length(b) alloc_if(1) free_if(0))
    #pragma offload_transfer target(mic:0) in(A[0:b] : into(A1) alloc_if(0) free_if(0)) signal(0)
        for (int k = 0; k < nb; k++) {
            if (k + 1 < nb) {
                if ((k + 1) % 2 == 0) {
    #pragma offload_transfer target(mic:0) in(A[(k+1)*b:b] : into(A1) alloc_if(0) free_if(0)) signal(k + 1)
                    ;
                } else {
    #pragma offload_transfer target(mic:0) in(A[(k+1)*b:b] : into(A2) alloc_if(0) free_if(0)) signal(k + 1)
                    ;
                }
            }
            if (k % 2 == 0) {
    #pragma offload target(mic:0) nocopy(A1) nocopy(B1) in(b) wait(k) out(B1[0:b] : into(B[k*b:b]) alloc_if(0) free_if(0)) persistent(1)
    #pragma omp parallel for
                for (int i = 0; i < b; i++) { B1[i] = A1[i] * 2.0; }
            } else {
    #pragma offload target(mic:0) nocopy(A2) nocopy(B1) in(b) wait(k) out(B1[0:b] : into(B[k*b:b]) alloc_if(0) free_if(0)) persistent(1)
    #pragma omp parallel for
                for (int i = 0; i < b; i++) { B1[i] = A2[i] * 2.0; }
            }
        }
    #pragma offload_transfer target(mic:0) nocopy(A1 : alloc_if(0) free_if(1)) nocopy(A2 : alloc_if(0) free_if(1)) nocopy(B1 : alloc_if(0) free_if(1))
    }
    """

    def test_hand_streamed_loop_correct(self):
        n, nb = 64, 4
        arrays = {
            "A": np.arange(n, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        }
        result = run_program(
            self.STREAMED, arrays=arrays, scalars={"b": n // nb, "nb": nb}
        )
        assert np.array_equal(result.array("B"), np.arange(n) * 2.0)

    def test_hand_streamed_overlaps(self):
        """Streaming must beat the same loop without overlap when transfer
        and compute are comparable."""
        n, nb = 1 << 14, 8
        arrays = {
            "A": np.arange(n, dtype=np.float32),
            "B": np.zeros(n, dtype=np.float32),
        }
        scale = 2000.0
        streamed = run_program(
            self.STREAMED,
            arrays=dict(arrays),
            scalars={"b": n // nb, "nb": nb},
            machine=Machine(scale=scale),
        ).stats
        plain = run_program(
            """
            void main() {
            #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
            #pragma omp parallel for
                for (int i = 0; i < n; i++) { B[i] = A[i] * 2.0; }
            }
            """,
            arrays=dict(arrays),
            scalars={"n": n},
            machine=Machine(scale=scale),
        ).stats
        assert streamed.total_time < plain.total_time

    def test_double_buffer_memory_is_bounded(self):
        n, nb = 1 << 12, 8
        machine = Machine()
        run_program(
            self.STREAMED,
            arrays={
                "A": np.arange(n, dtype=np.float32),
                "B": np.zeros(n, dtype=np.float32),
            },
            scalars={"b": n // nb, "nb": nb},
            machine=machine,
        )
        # Three block buffers instead of two full arrays.
        assert machine.device_memory.peak == 3 * (n // nb) * 4

    def test_offload_wait_statement(self):
        src = """
        void main() {
        #pragma offload_transfer target(mic:0) in(A[0:8] : into(A1) alloc_if(1) free_if(0)) signal(7)
            x = 1;
        #pragma offload_wait target(mic:0) wait(7)
        #pragma offload target(mic:0) nocopy(A1) out(B : length(8))
        #pragma omp parallel for
            for (int i = 0; i < 8; i++) { B[i] = A1[i]; }
        }
        """
        arrays = {
            "A": np.arange(8, dtype=np.float32),
            "B": np.zeros(8, dtype=np.float32),
        }
        result = run_program(src, arrays=arrays)
        assert np.array_equal(result.array("B"), np.arange(8))
