"""Tests for per-tenant isolation: token buckets and circuit breakers."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.isolation import (
    CircuitBreaker,
    TenantCircuitOpen,
    TenantGate,
    TenantRateLimited,
    TokenBucket,
)
from repro.service.queue import AdmissionRejected


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.admit(0.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.1)
        assert bucket.admit(0.6)  # 0.5s -> one token at 2/s

    def test_burst_caps_accumulation(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        bucket.admit(0.0)
        # A long idle period accrues at most `burst` tokens.
        assert bucket.admit(100.0)
        assert bucket.admit(100.0)
        assert not bucket.admit(100.0)

    def test_time_going_backwards_is_safe(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.admit(10.0)
        assert not bucket.admit(5.0)  # no refill, no crash

    def test_retry_after_names_deficit(self):
        bucket = TokenBucket(rate=2.0, burst=1.0)
        bucket.admit(0.0)
        bucket.admit(0.0)
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_deterministic_for_same_timestamps(self):
        times = [0.0, 0.1, 0.5, 0.6, 3.0, 3.1, 3.2]
        decisions = []
        for _ in range(2):
            bucket = TokenBucket(rate=1.0, burst=2.0)
            decisions.append([bucket.admit(t) for t in times])
        assert decisions[0] == decisions[1]

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failures=2, cooldown=10.0)
        breaker.record(ok=False, now=0.0)
        assert breaker.state == "closed"
        breaker.record(ok=False, now=1.0)
        assert breaker.state == "open"
        assert not breaker.allow(2.0)
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failures=2, cooldown=10.0)
        breaker.record(ok=False, now=0.0)
        breaker.record(ok=True, now=1.0)
        breaker.record(ok=False, now=2.0)
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failures=1, cooldown=5.0)
        breaker.record(ok=False, now=0.0)
        assert not breaker.allow(4.0)
        assert breaker.allow(5.0)  # the half-open probe
        assert breaker.state == "half_open"
        breaker.record(ok=True, now=5.1)
        assert breaker.state == "closed"
        assert breaker.allow(5.2)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failures=1, cooldown=5.0)
        breaker.record(ok=False, now=0.0)
        assert breaker.allow(5.0)
        breaker.record(ok=False, now=5.1)
        assert breaker.state == "open"
        # Cooldown restarts from the re-open.
        assert not breaker.allow(9.0)
        assert breaker.allow(10.2)

    def test_half_open_sheds_while_probe_in_flight(self):
        breaker = CircuitBreaker(failures=1, cooldown=5.0)
        breaker.record(ok=False, now=0.0)
        assert breaker.allow(5.0)
        assert not breaker.allow(5.0)  # only one probe at a time
        assert breaker.probes == 1

    def test_retry_after_counts_down(self):
        breaker = CircuitBreaker(failures=1, cooldown=10.0)
        breaker.record(ok=False, now=0.0)
        assert breaker.retry_after(4.0) == pytest.approx(6.0)
        assert breaker.retry_after(20.0) == 0.0


class TestTenantGate:
    def test_disabled_gate_admits_everything(self):
        gate = TenantGate()
        assert not gate.enabled
        for _ in range(100):
            gate.admit("t0")  # never raises
        gate.record("t0", ok=False)  # no breaker: no-op

    def test_rate_limits_per_tenant(self):
        gate = TenantGate(rate=1.0, burst=1.0)
        gate.admit_at("hot", 0.0)
        with pytest.raises(TenantRateLimited) as exc:
            gate.admit_at("hot", 0.0)
        assert exc.value.reason == "rate_limited"
        assert "hot" in str(exc.value)
        # The other tenant's bucket is untouched.
        gate.admit_at("cold", 0.0)

    def test_rejections_are_admission_rejected(self):
        gate = TenantGate(rate=1.0, burst=1.0)
        gate.admit_at("t", 0.0)
        with pytest.raises(AdmissionRejected):
            gate.admit_at("t", 0.0)

    def test_breaker_isolates_failing_tenant(self):
        gate = TenantGate(breaker_failures=2, breaker_cooldown=10.0)
        for now in (0.0, 1.0):
            gate.admit_at("bad", now)
            gate.record_at("bad", ok=False, now=now)
        with pytest.raises(TenantCircuitOpen) as exc:
            gate.admit_at("bad", 2.0)
        assert exc.value.reason == "circuit_open"
        # Only the failing tenant is shed.
        gate.admit_at("good", 2.0)

    def test_metrics_booked(self):
        metrics = MetricsRegistry()
        gate = TenantGate(
            rate=1.0, burst=1.0, breaker_failures=1, metrics=metrics
        )
        gate.admit_at("t", 0.0)
        gate.record_at("t", ok=False, now=0.0)
        with pytest.raises(TenantCircuitOpen):
            gate.admit_at("t", 0.1)
        counters = metrics.snapshot()["counters"]
        assert counters["service.tenant.breaker_trips"] == 1
        assert counters["service.tenant.circuit_rejected"] == 1

    def test_stats_shape(self):
        gate = TenantGate(rate=2.0, burst=2.0, breaker_failures=1)
        gate.admit_at("t1", 0.0)
        gate.record_at("t1", ok=False, now=0.0)
        stats = gate.stats()
        assert stats["t1"]["breaker"] == "open"
        assert stats["t1"]["trips"] == 1
        assert "tokens" in stats["t1"]
