"""Tests for the JSON-lines TCP front end."""

import asyncio
import threading

import pytest

from repro.service import server as srv
from repro.service.jobs import JobSpec

SOURCE = """
void main() {
#pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        B[i] = A[i] * 2.0;
    }
}
"""


def run_job_spec(seed=0):
    return JobSpec(
        kind="run",
        source=SOURCE,
        arrays=("A=16:float:arange", "B=16:float:zeros"),
        scalars=("n=16",),
        seed=seed,
    )


@pytest.fixture
def live_server():
    """A campaign service on an ephemeral port, in a background thread."""
    box = {}
    ready = threading.Event()

    def main():
        def on_ready(port):
            box["port"] = port
            ready.set()

        asyncio.run(srv.serve(
            host="127.0.0.1", port=0, workers=0,
            max_depth=8, high_water=4, ready=on_ready,
        ))

    thread = threading.Thread(target=main, daemon=True)
    thread.start()
    assert ready.wait(10), "server never came up"
    yield "127.0.0.1", box["port"]
    try:
        srv.request("127.0.0.1", box["port"], {"op": "shutdown"}, timeout=5)
    except OSError:
        pass
    thread.join(10)


class TestProtocol:
    def test_ping(self, live_server):
        host, port = live_server
        assert srv.request(host, port, {"op": "ping"}) == [{"event": "pong"}]

    def test_unknown_op(self, live_server):
        host, port = live_server
        (event,) = srv.request(host, port, {"op": "launder"})
        assert event["event"] == "error"
        assert "launder" in event["error"]

    def test_bad_json(self, live_server):
        host, port = live_server
        import socket

        with socket.create_connection(live_server, timeout=5) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("r").readline()
        assert "bad JSON" in line

    def test_submit_streams_lifecycle(self, live_server):
        host, port = live_server
        events = srv.submit(host, port, run_job_spec())
        names = [e["event"] for e in events]
        assert names == ["queued", "started", "result", "done"]
        result = next(e for e in events if e["event"] == "result")
        assert result["result"]["ok"]
        assert result["result"]["outputs"]

    def test_identical_submission_served_from_cache(self, live_server):
        host, port = live_server
        first = srv.submit(host, port, run_job_spec())
        second = srv.submit(host, port, run_job_spec())
        assert [e["event"] for e in second] == ["cached", "result", "done"]
        r1 = next(e for e in first if e["event"] == "result")["result"]
        r2 = next(e for e in second if e["event"] == "result")["result"]
        assert r1 == r2

    def test_invalid_spec_is_an_error_event(self, live_server):
        host, port = live_server
        (event,) = srv.request(
            host, port,
            {"op": "submit", "spec": {"kind": "run", "source": None}},
        )
        assert event["event"] == "error"
        assert "source" in event["error"]

    def test_stats_reports_store_and_warm_state(self, live_server):
        host, port = live_server
        srv.submit(host, port, run_job_spec(seed=7))
        (stats,) = srv.request(host, port, {"op": "stats"})
        assert stats["event"] == "stats"
        assert stats["store"]["size"] >= 1
        assert "warm" in stats
        assert stats["metrics"]["counters"]["service.jobs.submitted"] >= 1

    def test_stats_reports_supervision_and_drain_state(self, live_server):
        host, port = live_server
        (stats,) = srv.request(host, port, {"op": "stats"})
        assert stats["draining"] is False
        assert stats["supervisor"]["restarts"] == 0
        assert stats["supervisor"]["quarantined"] == 0
        assert stats["tenants"] == {}


class TestDrain:
    def test_submit_during_drain_rejected_over_the_wire(self):
        # request_shutdown closes admission but keeps the listener up, so
        # a late client gets a protocol-level reject, not a dead socket.
        from repro.service.service import CampaignService

        async def scenario():
            server = srv.CampaignServer(CampaignService(workers=0))
            await server.start()
            server.request_shutdown()
            loop = asyncio.get_running_loop()
            events = await loop.run_in_executor(
                None,
                lambda: srv.submit(
                    "127.0.0.1", server.port, run_job_spec(seed=3)
                ),
            )
            drained = await server.drain_and_close(grace_seconds=5.0)
            return events, drained

        events, drained = asyncio.run(scenario())
        assert drained
        (event,) = events
        assert event["event"] == "rejected"
        assert event["reason"] == "draining"
        assert event["retry_after"] >= 0

    def test_serve_until_shutdown_drains_inflight_jobs(self):
        from repro.service.service import CampaignService

        async def scenario():
            server = srv.CampaignServer(CampaignService(workers=0))
            await server.start()
            jobs = [
                server.service.submit(run_job_spec(seed=seed))
                for seed in (11, 12)
            ]
            server.request_shutdown()
            drained = await server.serve_until_shutdown(grace_seconds=10.0)
            return drained, [job.state for job in jobs]

        drained, states = asyncio.run(scenario())
        assert drained
        assert states == ["done", "done"]


class TestDurability:
    def test_restart_on_state_dir_reports_recovery(self, tmp_path):
        # Two server generations on one state dir: the first computes a
        # job, the second warms its store from the segments, serves the
        # same spec from cache, and hands its recovery stats to the
        # `recovered` callback before `ready`.
        state = str(tmp_path / "state")

        def generation(expect_recovered):
            box = {"calls": []}
            ready = threading.Event()

            def main():
                def on_recovered(recovery):
                    box["recovery"] = recovery
                    box["calls"].append("recovered")

                def on_ready(port):
                    box["port"] = port
                    box["calls"].append("ready")
                    ready.set()

                asyncio.run(srv.serve(
                    host="127.0.0.1", port=0, workers=0,
                    ready=on_ready, recovered=on_recovered,
                    state_dir=state, sync="always",
                ))

            thread = threading.Thread(target=main, daemon=True)
            thread.start()
            assert ready.wait(10), "server never came up"
            assert box["calls"] == ["recovered", "ready"]
            events = srv.submit(
                "127.0.0.1", box["port"], run_job_spec(seed=21)
            )
            srv.request("127.0.0.1", box["port"], {"op": "stats"})
            srv.request("127.0.0.1", box["port"], {"op": "shutdown"}, timeout=5)
            thread.join(10)
            assert box["recovery"]["recovered_results"] == expect_recovered
            assert box["recovery"]["dropped_corrupt"] == 0
            return events

        first = generation(expect_recovered=0)
        assert [e["event"] for e in first] == [
            "queued", "started", "result", "done",
        ]
        second = generation(expect_recovered=1)
        # Served from the recovered store: no recomputation.
        assert second[0]["event"] == "cached"
        assert second[-1]["event"] == "done"

    def test_stats_op_reports_durability(self, tmp_path):
        from repro.service.service import CampaignService

        async def scenario():
            service = CampaignService(
                workers=0, state_dir=str(tmp_path / "state")
            )
            server = srv.CampaignServer(service)
            await server.start()
            loop = asyncio.get_running_loop()
            (stats,) = await loop.run_in_executor(
                None,
                lambda: srv.request(
                    "127.0.0.1", server.port, {"op": "stats"}
                ),
            )
            await server.close()
            return stats

        stats = asyncio.run(scenario())
        assert stats["event"] == "stats"
        assert stats["durability"]["recovery"]["recovered_jobs"] == 0
        assert stats["durability"]["journal"]["appends"] == 0


class TestShutdown:
    def test_shutdown_op_stops_server(self):
        box = {}
        ready = threading.Event()

        def main():
            asyncio.run(srv.serve(
                host="127.0.0.1", port=0, workers=0,
                ready=lambda p: (box.update(port=p), ready.set()),
            ))

        thread = threading.Thread(target=main, daemon=True)
        thread.start()
        assert ready.wait(10)
        (event,) = srv.request(
            "127.0.0.1", box["port"], {"op": "shutdown"}, timeout=5
        )
        assert event == {"event": "bye"}
        thread.join(10)
        assert not thread.is_alive()
