"""Sensitivity sweeps: where do the optimizations stop mattering?

The paper evaluates one machine.  The simulator lets us ask the
follow-on questions a reader would: how do the gains move as the PCIe
link speeds up, as kernel-launch overhead shrinks (later offload stacks
got much faster), or as the problem grows?  Each sweep re-runs a
benchmark pair (unoptimized vs optimized) across one machine parameter
and reports the gain curve plus the crossover point, if any.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hardware.spec import MachineSpec, MicSpec, PcieSpec, paper_machine
from repro.runtime.executor import Machine
from repro.workloads.base import MiniCWorkload
from repro.workloads.suite import get_workload


@dataclass
class SweepPoint:
    parameter: float
    unopt_time: float
    opt_time: float

    @property
    def gain(self) -> float:
        """Unoptimized-over-optimized speedup at this point."""
        return self.unopt_time / self.opt_time


@dataclass
class SweepResult:
    name: str
    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    def gains(self) -> Dict[float, float]:
        """Mapping of swept parameter value to measured gain."""
        return {p.parameter: p.gain for p in self.points}

    def crossover(self, threshold: float = 1.05) -> Optional[float]:
        """First swept value at which the gain drops below *threshold*.

        Returns None when the optimization keeps paying off over the
        whole range.
        """
        for point in self.points:
            if point.gain < threshold:
                return point.parameter
        return None


def _run_pair(
    workload_name: str, machine_factory: Callable[[], Machine]
) -> SweepPoint:
    unopt = get_workload(workload_name)
    opt = get_workload(workload_name)
    t_unopt = unopt.run("mic", machine=machine_factory()).time
    t_opt = opt.run("opt", machine=machine_factory()).time
    return SweepPoint(0.0, t_unopt, t_opt)


def sweep_pcie_bandwidth(
    workload_name: str, bandwidths_gb: List[float]
) -> SweepResult:
    """Gain of the full optimization pipeline vs. PCIe bandwidth.

    Streaming's value comes from hiding transfer time: as the link gets
    faster, there is less to hide.
    """
    result = SweepResult(workload_name, "pcie_bandwidth_gb")
    for gb in bandwidths_gb:
        spec = MachineSpec(
            pcie=dataclasses.replace(PcieSpec(), bandwidth=gb * (1 << 30))
        )
        scale = get_workload(workload_name).sim_scale

        point = _run_pair(
            workload_name, lambda: Machine(spec=spec, scale=scale)
        )
        point.parameter = gb
        result.points.append(point)
    return result


def sweep_launch_overhead(
    workload_name: str, overheads_ms: List[float]
) -> SweepResult:
    """Gain vs. kernel-launch overhead K.

    Merging and thread reuse exist because K was milliseconds on the
    LEO/COI stack; this sweep shows their value melting away as K drops.
    """
    result = SweepResult(workload_name, "launch_overhead_ms")
    for ms in overheads_ms:
        spec = MachineSpec(
            mic=dataclasses.replace(
                MicSpec(), kernel_launch_overhead=ms * 1e-3
            )
        )
        scale = get_workload(workload_name).sim_scale
        point = _run_pair(
            workload_name, lambda: Machine(spec=spec, scale=scale)
        )
        point.parameter = ms
        result.points.append(point)
    return result


def sweep_problem_scale(
    workload_name: str, scale_factors: List[float]
) -> SweepResult:
    """Gain vs. input size (relative to the paper's input)."""
    result = SweepResult(workload_name, "relative_input_size")
    base_scale = get_workload(workload_name).sim_scale
    for factor in scale_factors:
        point = _run_pair(
            workload_name, lambda: Machine(scale=base_scale * factor)
        )
        point.parameter = factor
        result.points.append(point)
    return result


def render_sweep(result: SweepResult) -> str:
    """Render a sweep's gain curve and crossover as text."""
    lines = [f"sweep: {result.name} over {result.parameter}"]
    for point in result.points:
        lines.append(
            f"  {point.parameter:10.3f}  "
            f"unopt {point.unopt_time * 1000:10.2f} ms  "
            f"opt {point.opt_time * 1000:10.2f} ms  "
            f"gain {point.gain:7.2f}x"
        )
    crossover = result.crossover()
    if crossover is None:
        lines.append("  no crossover in the swept range")
    else:
        lines.append(f"  crossover (gain < 1.05x) at {crossover}")
    return "\n".join(lines)
