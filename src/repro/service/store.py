"""Shared result store: concurrency-safe get-or-compute keyed on provenance.

The experiments harness has always memoized benchmark runs in a plain
dict; the campaign service generalizes that memo into a store several
clients (and several worker threads) can share.  Keys are the same
provenance tuples the harness uses — pure functions of everything that
determines a result — so identical submissions are served from cache
across clients, and two *concurrent* identical submissions compute the
value exactly once (the second waits on the first's per-key lock).

Hit/miss/size telemetry is exported through an
:class:`repro.obs.metrics.MetricsRegistry` so a service operator can
watch the shared-store hit rate; the default :data:`~repro.obs.metrics.NULL_METRICS`
sink keeps unobserved stores allocation-free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.obs.metrics import NULL_METRICS


class ResultStore:
    """A thread-safe memo of computed results keyed on provenance tuples.

    *metrics* receives ``<name>.hits`` / ``<name>.misses`` /
    ``<name>.evictions`` counters and a ``<name>.size`` gauge; *name*
    defaults to ``"store"`` so one registry can host several stores side
    by side.

    *max_entries* bounds the store with LRU eviction (a hit refreshes
    recency, an insert past the bound evicts the coldest entry), so a
    long-lived server under unique-spec traffic holds steady memory
    instead of leaking; the default ``None`` keeps the store unbounded.
    """

    def __init__(
        self,
        metrics=None,
        name: str = "store",
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.name = name
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._results: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        #: Per-key compute locks so concurrent identical keys serialize
        #: against each other without serializing *distinct* keys.
        self._key_locks: Dict[Hashable, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.clears = 0

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._results

    def get(self, key: Hashable, record: bool = False) -> Optional[object]:
        """The stored result for *key*, or None.

        *record* books the lookup in the hit/miss telemetry; the default
        leaves the counters alone so double-checks don't double-count.
        """
        with self._lock:
            value = self._results.get(key)
            if value is not None:
                self._results.move_to_end(key)
            if record:
                self._record(hit=value is not None)
            return value

    def put(self, key: Hashable, value: object) -> None:
        """Store *value* under *key* (last write wins); may evict LRU."""
        with self._lock:
            self._results[key] = value
            self._results.move_to_end(key)
            self._evict()
            self.metrics.gauge(f"{self.name}.size").set(len(self._results))

    def _evict(self) -> None:
        """Drop least-recently-used entries past the bound (lock held)."""
        if self.max_entries is None:
            return
        while len(self._results) > self.max_entries:
            self._results.popitem(last=False)
            self.evictions += 1
            self.metrics.counter(f"{self.name}.evictions").inc()

    def _record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
            self.metrics.counter(f"{self.name}.hits").inc()
        else:
            self.misses += 1
            self.metrics.counter(f"{self.name}.misses").inc()

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], object]
    ) -> object:
        """Return the cached result for *key*, computing it at most once.

        The global lock only guards the dict lookups; *compute* runs
        under the key's own lock, so a second caller with the same key
        blocks until the first finishes and then takes the cached value,
        while callers with different keys proceed in parallel.
        """
        with self._lock:
            if key in self._results:
                self._results.move_to_end(key)
                self._record(hit=True)
                return self._results[key]
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._results:
                    # Lost the race: the winner computed while we waited.
                    self._results.move_to_end(key)
                    self._record(hit=True)
                    return self._results[key]
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._key_locks.pop(key, None)
                raise
            with self._lock:
                self._results[key] = value
                self._evict()
                self._record(hit=False)
                self.metrics.gauge(f"{self.name}.size").set(len(self._results))
                self._key_locks.pop(key, None)
            return value

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, size)`` of the store so far."""
        with self._lock:
            return self.hits, self.misses, len(self._results)

    def cache_stats(self) -> dict:
        """Full cache telemetry, JSON-ready (includes LRU eviction state)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._results),
                "evictions": self.evictions,
                "clears": self.clears,
                "max_entries": self.max_entries,
            }

    def clear(self) -> None:
        """Wipe every result and start a fresh stats generation.

        Hit/miss/eviction counters reset alongside the entries and the
        wipe itself is booked (``clears`` in :meth:`cache_stats`, a
        ``<name>.clears`` metric counter), so evictions-under-pressure
        and deliberate wipes stay distinguishable and a recovery-time
        reload is never polluted by prior-generation counters.
        """
        with self._lock:
            self._results.clear()
            self._key_locks.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.clears += 1
            self.metrics.counter(f"{self.name}.clears").inc()
            self.metrics.gauge(f"{self.name}.size").set(0)
