"""Admission-controlled priority job queue for the campaign service.

Jobs are ordered by ``(priority, arrival sequence)`` — lower priority
values run first, ties run FIFO — and the queue is *bounded*: past the
high-water mark new submissions are rejected with a ``retry_after`` hint
instead of queuing without limit, so a burst can't grow the backlog (and
its latency) unboundedly.  ``max_depth`` is the hard ceiling; the high
water mark (default 75 % of it) is where backpressure starts, giving
in-flight work headroom to drain before the queue is truly full.

The queue is asyncio-native: :meth:`get` suspends until a job is
available; :meth:`offer` never suspends — admission is a synchronous
accept/reject decision, which keeps it deterministic for a given queue
state.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import List, Optional, Tuple

from repro.obs.metrics import NULL_METRICS


class AdmissionRejected(Exception):
    """Backpressure: the queue is past its high-water mark.

    *retry_after* is the suggested wait (seconds) before resubmitting,
    derived from the backlog the rejected job would have sat behind.

    Subclasses (tenant rate limits, open circuit breakers, drain — see
    :mod:`repro.service.isolation` and
    :class:`~repro.service.service.ServiceDraining`) override ``reason``
    so the wire protocol can tell clients *why* without new event types.
    """

    reason = "backpressure"

    def __init__(self, depth: int, retry_after: float):
        self.depth = depth
        self.retry_after = retry_after
        super().__init__(
            f"queue at high-water mark ({depth} jobs deep); "
            f"retry after {retry_after:.3f}s"
        )


class AdmissionQueue:
    """Bounded priority/FIFO queue with reject-past-high-water admission."""

    def __init__(
        self,
        max_depth: int = 64,
        high_water: Optional[int] = None,
        metrics=None,
        #: Seconds of estimated backlog drain per queued job, used for
        #: the retry_after hint (a coarse, deterministic estimate).
        est_service_seconds: float = 0.25,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if high_water is None:
            high_water = max(1, (max_depth * 3) // 4)
        if not 1 <= high_water <= max_depth:
            raise ValueError(
                f"high_water must be in [1, max_depth={max_depth}], "
                f"got {high_water}"
            )
        self.max_depth = max_depth
        self.high_water = high_water
        self.est_service_seconds = est_service_seconds
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._heap: List[Tuple[int, int, object]] = []
        self._seq = itertools.count()
        self._available = asyncio.Event()
        self.accepted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        """Jobs currently waiting (not yet handed to a worker)."""
        return len(self._heap)

    def retry_after(self, depth: Optional[int] = None) -> float:
        """Deterministic backoff hint for a submission seeing *depth*."""
        depth = self.depth if depth is None else depth
        over = depth - self.high_water + 1
        return round(max(1, over) * self.est_service_seconds, 6)

    def offer(self, job, priority: Optional[int] = None, force: bool = False) -> int:
        """Admit *job* or raise :class:`AdmissionRejected`.

        Returns the queue depth *after* admission.  Priority defaults to
        the job spec's own; lower runs first.  *force* bypasses the
        high-water check — the crash-recovery path uses it so journal
        replay can never drop a job the service already promised to run.
        """
        depth = self.depth
        if depth >= self.high_water and not force:
            self.rejected += 1
            self.metrics.counter("service.queue.rejected").inc()
            raise AdmissionRejected(depth, self.retry_after(depth))
        if priority is None:
            priority = getattr(getattr(job, "spec", job), "priority", 1)
        heapq.heappush(self._heap, (priority, next(self._seq), job))
        self.accepted += 1
        self.metrics.counter("service.queue.accepted").inc()
        self.metrics.gauge("service.queue.depth").set(self.depth)
        self._available.set()
        return self.depth

    async def get(self):
        """Pop the next job (priority, then FIFO); waits when empty."""
        while not self._heap:
            self._available.clear()
            await self._available.wait()
        _, _, job = heapq.heappop(self._heap)
        self.metrics.gauge("service.queue.depth").set(self.depth)
        return job

    def drain(self) -> list:
        """Remove and return every queued job (shutdown path), in order."""
        jobs = [job for _, _, job in sorted(self._heap)]
        self._heap.clear()
        self.metrics.gauge("service.queue.depth").set(0)
        return jobs
