"""Cross-iteration dependence checking for parallel loops.

The paper assumes its input loops are already parallel ("since we only
consider parallel loops (i.e., no cross-iteration dependences in the
loops)", Section IV) — but the transforms still verify this before
splitting or reordering, because splitting a loop with a loop-carried
dependence would change program meaning.

The check is a conservative syntactic test sufficient for the benchmark
loop shapes:

* every array written at index ``f(i)`` must only be read at the same
  linear form ``f(i)`` inside the loop (element-wise updates are fine;
  reading a neighbour of a written array is not);
* every scalar written must be private (declared in the body / listed in
  ``private``) or a declared reduction;
* writes through indirect indexes (``A[B[i]]``) are treated as dependent
  unless the loop's pragma claims parallelism — matching the paper, which
  trusts the programmer's ``omp parallel for`` for such loops but refuses
  to *transform* guarded irregular writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.minic import ast_nodes as ast
from repro.minic.visitor import get_pragma
from repro.analysis.array_access import (
    AccessKind,
    classify_accesses,
    loop_variable,
)
from repro.analysis.liveness import analyze_loop_liveness


@dataclass
class DependenceReport:
    """Result of the parallel-loop check."""

    parallel: bool
    violations: List[str] = field(default_factory=list)


def check_parallel_loop(
    loop: ast.For, bindings: Optional[dict] = None
) -> DependenceReport:
    """Check *loop* for cross-iteration dependences (conservatively)."""
    violations: List[str] = []
    accesses = classify_accesses(loop, bindings)
    liveness = analyze_loop_liveness(loop)
    omp = get_pragma(loop, ast.OmpParallelFor)
    reductions = {var for _, var in omp.reduction} if omp else set()

    # -- scalar writes must be private or reductions ------------------------
    scalar_writes = liveness.defined & liveness.scalars
    for name in sorted(scalar_writes):
        if name not in liveness.private and name not in reductions:
            violations.append(
                f"scalar {name!r} is written but neither private nor a reduction"
            )

    # -- array write/read index forms must match -----------------------------
    by_array: dict = {}
    for access in accesses:
        by_array.setdefault(access.array, []).append(access)

    for array, accs in sorted(by_array.items()):
        writes = [a for a in accs if a.is_write]
        reads = [a for a in accs if not a.is_write]
        if not writes:
            continue
        for write in writes:
            if write.kind is AccessKind.INDIRECT:
                if omp is None:
                    violations.append(
                        f"indirect write to {array!r} without a parallel pragma"
                    )
                continue
            if write.kind is AccessKind.NONLINEAR:
                violations.append(f"nonlinear write index on {array!r}")
                continue
            if write.kind is AccessKind.INVARIANT:
                if array not in reductions:
                    violations.append(
                        f"loop-invariant write index on {array!r} (all iterations "
                        f"write the same element)"
                    )
                continue
            for read in reads:
                if read.kind in (AccessKind.INDIRECT, AccessKind.NONLINEAR):
                    violations.append(
                        f"array {array!r} is written at a linear index but read "
                        f"indirectly"
                    )
                elif read.linear != write.linear:
                    violations.append(
                        f"array {array!r} written at "
                        f"{write.linear.coeff}*i+{write.linear.const} but read at "
                        f"{read.linear.coeff}*i+{read.linear.const}"
                    )
    return DependenceReport(parallel=not violations, violations=violations)


def is_parallel_loop(loop: ast.For, bindings: Optional[dict] = None) -> bool:
    """True when no cross-iteration dependence is detected."""
    try:
        loop_variable(loop)
    except Exception:
        return False
    return check_parallel_loop(loop, bindings).parallel
