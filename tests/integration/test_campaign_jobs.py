"""Campaign fan-out: worker count must be invisible in the summary.

Every scenario cell's fault plan is seeded by a pure function of the
campaign seed and the cell coordinates, and outcomes are collected in
submission order, so ``--jobs N`` must produce byte-identical summary
JSON for any N.  A worker crash or an interrupt must cancel outstanding
cells and surface the completed prefix as an explicitly partial result
instead of hanging.
"""

import json
from concurrent.futures import BrokenExecutor, Future, ThreadPoolExecutor

import pytest

from repro.faults import campaign
from repro.faults.campaign import run_campaign

NAMES = ["blackscholes", "nn"]


def _summary(**kwargs):
    result = run_campaign(names=NAMES, scenarios=2, seed=7, **kwargs)
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def test_jobs_do_not_change_summary(monkeypatch):
    """jobs=2 must match jobs=1 byte for byte.

    A thread pool stands in for the process pool: it exercises the
    submit/collect path (ordering, partial handling) without per-test
    process spawn cost; the CI codegen-smoke job diffs real
    multiprocess output through the CLI.
    """
    sequential = _summary(jobs=1)
    monkeypatch.setattr(campaign, "_POOL_CLS", ThreadPoolExecutor)
    fanned = _summary(jobs=2)
    assert fanned == sequential


def test_tracing_is_incompatible_with_fanout():
    with pytest.raises(ValueError, match="jobs 1"):
        run_campaign(
            names=NAMES, scenarios=1, jobs=2,
            tracer_factory=lambda name, k: None,
        )


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match=">= 1"):
        run_campaign(names=NAMES, scenarios=1, jobs=0)


class _CrashAfterOne:
    """Pool double: the first cell completes, the second kills the pool
    (as a worker segfault would — ``BrokenProcessPool``)."""

    def __init__(self, max_workers=None):
        self.submitted = 0
        self.cancelled = False

    def submit(self, fn, *args, **kwargs):
        self.submitted += 1
        future: Future = Future()
        if self.submitted == 1:
            future.set_result(fn(*args, **kwargs))
        else:
            future.set_exception(BrokenExecutor("worker died"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.cancelled = cancel_futures


def test_worker_crash_yields_partial_prefix(monkeypatch):
    monkeypatch.setattr(campaign, "_POOL_CLS", _CrashAfterOne)
    result = run_campaign(names=NAMES, scenarios=2, seed=7, jobs=2)
    assert result.partial
    assert len(result.outcomes) == 1  # the completed prefix only
    assert result.outcomes[0].workload == NAMES[0]
    assert result.as_dict()["partial"] is True
    # ... and the full-campaign summary marks itself complete.
    full = run_campaign(names=NAMES, scenarios=1, seed=7)
    assert full.as_dict()["partial"] is False
