"""The injector: one fault plan bound to one run's stats.

The runtime never talks to a :class:`~repro.faults.plan.FaultPlan`
directly — it asks the injector, which counts what it injects and can be
*suspended* while a recovery path re-issues work (a demoted offload's
re-allocations must succeed, or recovery could recurse forever).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.faults.plan import Fault, FaultPlan
from repro.faults.stats import FaultStats
from repro.obs.tracer import NULL_TRACER


class FaultInjector:
    """Draws faults from a plan and records them in the run's stats."""

    def __init__(self, plan: FaultPlan, stats: Optional[FaultStats] = None):
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self._suspend = 0
        #: Observability hooks, attached by the Machine: fault firings
        #: become instant events at the simulated time of the draw.
        self.tracer = NULL_TRACER
        self.clock = None

    def draw(self, site: str, device: Optional[int] = None) -> Optional[Fault]:
        """The fault (if any) for the next operation at *site*.

        *device* scopes the draw to one fleet device's stream; a
        single-device runtime passes nothing.
        """
        if self._suspend:
            return None
        fault = self.plan.draw(site, device=device)
        if fault is not None:
            self.stats.record_injected(fault)
            if self.tracer.enabled and self.clock is not None:
                self.tracer.instant(
                    f"fault:{site}:{fault.kind}", self.clock.now, track="cpu",
                    site=site, kind=fault.kind, severity=fault.severity,
                )
                self.tracer.metrics.counter(f"faults.injected.{site}").inc()
        return fault

    def draw_silent(self, site: str, device: Optional[int] = None) -> Optional[Fault]:
        """The silent fault (if any) for the next payload at *site*.

        Suspension short-circuits *before* the plan is consulted, so a
        recovery re-issue consumes no silent-stream draws and per-site
        determinism is preserved.
        """
        if self._suspend:
            return None
        fault = self.plan.draw_silent(site, device=device)
        if fault is not None:
            self.stats.record_injected(fault)
            if self.tracer.enabled and self.clock is not None:
                self.tracer.instant(
                    f"fault:{site}:{fault.kind}", self.clock.now, track="cpu",
                    site=site, kind=fault.kind, severity=fault.severity,
                )
                self.tracer.metrics.counter(f"faults.injected.{site}").inc()
        return fault

    @contextmanager
    def suspended(self):
        """Context in which no faults are injected (recovery re-issues)."""
        self._suspend += 1
        try:
            yield self
        finally:
            self._suspend -= 1
