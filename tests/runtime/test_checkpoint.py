"""Unit tests for checkpoint/restart recovery (repro.runtime.checkpoint).

The checkpoint manager shadows the COI runtime's buffer bookkeeping and,
on a full device reset, restores the session: charge the dead time,
re-upload only the live write windows, rebuild arenas, and re-charge
uncommitted kernel work.  These tests exercise the manager against a
bare :class:`Machine` — the workload-level contract (bit-identical
outputs across a mid-pipeline reset) lives in
``tests/integration/test_device_reset.py``.
"""

import numpy as np
import pytest

from repro.errors import DeviceLost, PointerTranslationError
from repro.faults import FaultPlan, FaultSpec, ResiliencePolicy
from repro.hardware.device import RESET_SEMANTICS, ResetSemantics
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.executor import Machine


def checkpointed_machine(interval=2, **policy_kwargs):
    policy = ResiliencePolicy(checkpoint_interval=interval, **policy_kwargs)
    return Machine(fault_plan=FaultPlan(scripted=[]), resilience=policy)


class TestPolicyKnobs:
    def test_checkpointing_disabled_by_default(self):
        policy = ResiliencePolicy()
        assert policy.checkpoint_interval == 0
        machine = Machine(resilience=policy)
        assert machine.checkpoint is None
        assert machine.coi.checkpoint is None

    def test_manager_attached_when_interval_positive(self):
        machine = checkpointed_machine(interval=3)
        assert isinstance(machine.checkpoint, CheckpointManager)
        assert machine.coi.checkpoint is machine.checkpoint

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ResiliencePolicy(checkpoint_interval=-1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_cost"):
            ResiliencePolicy(checkpoint_cost=-0.5)

    def test_negative_reset_budget_rejected(self):
        with pytest.raises(ValueError, match="max_resets"):
            ResiliencePolicy(max_resets=-1)


class TestBackoffMax:
    def test_uncapped_by_default(self):
        policy = ResiliencePolicy()
        assert policy.backoff_max is None
        # Historical behaviour: pure exponential growth.
        assert policy.backoff(5) == policy.backoff_base * policy.backoff_factor**5

    def test_cap_applies(self):
        policy = ResiliencePolicy(backoff_max=0.002)
        assert policy.backoff(0) == policy.backoff_base
        for attempt in range(10):
            assert policy.backoff(attempt) <= 0.002

    def test_cap_below_base_rejected(self):
        with pytest.raises(ValueError, match="backoff_max"):
            ResiliencePolicy(backoff_base=0.01, backoff_max=0.001)

    def test_cap_above_guarding_timeout_rejected(self):
        # Backing off for longer than it takes to detect the next
        # failure is never useful; the policy refuses the combination.
        policy = ResiliencePolicy()
        ceiling = min(
            policy.transfer_timeout, policy.kernel_timeout, policy.signal_timeout
        )
        with pytest.raises(ValueError, match="backoff_max"):
            ResiliencePolicy(backoff_max=ceiling * 2)


class TestShadowBookkeeping:
    def test_alloc_write_free_cycle(self):
        machine = checkpointed_machine()
        manager = machine.checkpoint
        coi = machine.coi
        coi.alloc_buffer("A", 100)
        coi.write_buffer("A", 0, np.ones(50, dtype=np.float32))
        assert "A" in manager._buffers
        assert (0, 50) in manager._buffers["A"].writes
        coi.free_buffer("A")
        assert "A" not in manager._buffers

    def test_repeated_window_supersedes(self):
        """A streamed slot re-written per block keeps ONE record, so a
        restore re-uploads only the resident block, not the history."""
        machine = checkpointed_machine()
        manager = machine.checkpoint
        coi = machine.coi
        coi.alloc_buffer("slot", 10)
        for _ in range(7):
            coi.write_buffer("slot", 0, np.ones(10, dtype=np.float32))
        assert len(manager._buffers["slot"].writes) == 1

    def test_commit_every_interval(self):
        machine = checkpointed_machine(interval=3)
        manager = machine.checkpoint
        coi = machine.coi
        for _ in range(7):
            manager.block_completed(coi, kernel_seconds=0.001)
        assert machine.fault_stats.checkpoints_committed == 2
        assert manager.last_checkpoint.block == 6
        # Blocks 7 is uncommitted — a reset would recompute exactly it.
        assert len(manager._uncommitted) == 1

    def test_commit_charges_host_time(self):
        machine = checkpointed_machine(interval=1, checkpoint_cost=0.5)
        before = machine.clock.now
        machine.checkpoint.block_completed(machine.coi, kernel_seconds=0.0)
        assert machine.clock.now == pytest.approx(before + 0.5)
        assert machine.fault_stats.checkpoint_seconds == pytest.approx(0.5)


class TestResetRecovery:
    def test_restore_rebuilds_device_state(self):
        machine = checkpointed_machine()
        coi = machine.coi
        payload = np.arange(64, dtype=np.float32)
        coi.alloc_buffer("A", 64)
        coi.write_buffer("A", 0, payload)
        in_use_before = coi.device_memory.in_use
        machine.checkpoint.handle_reset(coi)
        assert coi.epoch == 1
        assert np.array_equal(coi.device.arrays["A"], payload)
        assert coi.device_memory.in_use == in_use_before
        assert coi.device_memory.holds("A")
        assert machine.fault_stats.device_resets == 1
        assert machine.fault_stats.blocks_reuploaded == 1
        assert machine.fault_stats.recovery_actions == {
            "device": {"reset_survived": 1}
        }

    def test_reset_charges_detection_and_reinit(self):
        machine = checkpointed_machine()
        before = machine.clock.now
        machine.checkpoint.handle_reset(machine.coi)
        overhead = RESET_SEMANTICS.overhead(machine.spec.mic.threads_used)
        assert machine.clock.now >= before + overhead

    def test_uncommitted_blocks_recomputed(self):
        machine = checkpointed_machine(interval=10)
        manager = machine.checkpoint
        coi = machine.coi
        for _ in range(4):
            manager.block_completed(coi, kernel_seconds=0.25)
        before = machine.clock.now
        manager.handle_reset(coi)
        assert machine.fault_stats.blocks_recomputed == 4
        # The redo work occupies the device for at least the replayed
        # kernel seconds on top of the reset overhead.
        overhead = RESET_SEMANTICS.overhead(machine.spec.mic.threads_used)
        assert machine.clock.now >= before + overhead + 4 * 0.25
        # The restore itself is a consistent recovery point.
        assert not manager._uncommitted

    def test_reset_budget_exhaustion_raises(self):
        machine = checkpointed_machine(max_resets=2)
        manager = machine.checkpoint
        manager.handle_reset(machine.coi)
        manager.handle_reset(machine.coi)
        with pytest.raises(DeviceLost, match="max_resets"):
            manager.handle_reset(machine.coi)

    def test_reset_without_checkpointing_is_fatal(self):
        machine = Machine(
            fault_plan=FaultPlan(scripted=[FaultSpec("device", 0, "reset")]),
            resilience=ResiliencePolicy(),
        )
        from repro import run_source

        source = """
        void main() {
        #pragma offload target(mic:0) in(A : length(n)) in(n) out(B : length(n))
        #pragma omp parallel for
            for (int i = 0; i < n; i++) { B[i] = A[i] * 2.0; }
        }
        """
        with pytest.raises(DeviceLost, match="checkpoint_interval"):
            run_source(
                source,
                arrays={
                    "A": np.ones(8, dtype=np.float32),
                    "B": np.zeros(8, dtype=np.float32),
                },
                scalars={"n": 8},
                machine=machine,
            )
        assert machine.fault_stats.device_resets == 1

    def test_arena_rebuilt_with_fresh_deltas(self):
        machine = checkpointed_machine()
        coi = machine.coi
        arena = machine.arena
        obj = arena.allocate(1024, x=1.0)
        arena.copy_to_device(coi)
        generation = arena.generation
        machine.checkpoint.handle_reset(coi)
        assert arena.generation == generation + 1
        # Pointers still translate after the rebuild.
        assert arena.delta.translate(obj.ptr) == obj.ptr.addr + arena.delta._delta[
            obj.ptr.bid
        ]
        assert coi.device_memory.holds(f"arena:{obj.ptr.bid}")

    def test_delta_refresh_requires_registration(self):
        from repro.runtime.smartptr import DeltaTable

        table = DeltaTable()
        with pytest.raises(PointerTranslationError, match="never registered"):
            table.refresh(0, 1 << 44, 1 << 20)


class TestResetSemantics:
    def test_overhead_composition(self):
        semantics = ResetSemantics()
        assert semantics.overhead(200) == pytest.approx(
            semantics.detection_timeout
            + semantics.reinit_base
            + 200 * semantics.reinit_per_thread
        )

    def test_reset_is_costlier_than_per_op_recovery(self):
        """A whole-device loss must dwarf the per-operation timeouts —
        it is the failure mode of last resort, not a cheap retry."""
        policy = ResiliencePolicy()
        assert RESET_SEMANTICS.overhead(0) > 4 * max(
            policy.transfer_timeout, policy.kernel_timeout
        )

    def test_memory_manager_reset_preserves_peak(self):
        machine = checkpointed_machine()
        coi = machine.coi
        coi.alloc_buffer("A", 1000)
        peak = coi.device_memory.peak
        coi.reset_device()
        assert coi.device_memory.in_use == 0
        assert coi.device_memory.peak == peak
        assert coi.device_memory.device_resets == 1
