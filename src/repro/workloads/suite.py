"""The benchmark registry: all twelve Table II workloads."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads import (
    bfs,
    blackscholes,
    cfd,
    cg,
    dedup,
    ferret,
    freqmine,
    hotspot,
    kmeans,
    nn,
    srad,
    streamcluster,
)
from repro.workloads.base import Workload

#: Factories in Table II row order.
_FACTORIES = {
    "blackscholes": blackscholes.make,
    "streamcluster": streamcluster.make,
    "ferret": ferret.make,
    "dedup": dedup.make,
    "freqmine": freqmine.make,
    "kmeans": kmeans.make,
    "CG": cg.make,
    "cfd": cfd.make,
    "nn": nn.make,
    "srad": srad.make,
    "bfs": bfs.make,
    "hotspot": hotspot.make,
}


def workload_names() -> List[str]:
    """Benchmark names in Table II row order."""
    return list(_FACTORIES)


def get_workload(name: str, seed: Optional[int] = None) -> Workload:
    """Construct a fresh instance of one workload.

    *seed* (the global ``--seed`` flag) reseeds the workload's input
    generation; None keeps the fixed default input streams.
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown workload {name!r}; know {sorted(_FACTORIES)}")
    workload = _FACTORIES[name]()
    workload.input_seed = seed
    return workload


def build_suite() -> Dict[str, Workload]:
    """Construct one instance of every workload."""
    return {name: get_workload(name) for name in _FACTORIES}


#: A prebuilt instance per benchmark (fresh instances via get_workload).
SUITE = build_suite()
