"""Array-of-structures to structure-of-arrays conversion (Section IV).

"Array of structures is another common irregular access pattern.
Regularization can be easily done by converting arrays of structures to
structures of arrays statically."  ``P[i].x`` becomes ``P__x[i]``: each
field turns into its own contiguous array, restoring unit stride (and
thereby vectorizability and streamability).

The transform rewrites accesses and offload clauses; the companion
:func:`soa_arrays` helper splits the host-side numpy structured array the
same way so transformed programs can be executed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.minic import ast_nodes as ast
from repro.minic.visitor import NodeTransformer, walk
from repro.transforms.base import TransformReport


def soa_name(array: str, field: str) -> str:
    """The field array's name for one (array, field) pair."""
    return f"{array}__{field}"


def detect_aos_arrays(program: ast.Program) -> Dict[str, Set[str]]:
    """Find arrays accessed as ``name[...] .field`` and their fields."""
    found: Dict[str, Set[str]] = {}
    for node in walk(program):
        if (
            isinstance(node, ast.Member)
            and isinstance(node.base, ast.Subscript)
            and isinstance(node.base.base, ast.Ident)
        ):
            found.setdefault(node.base.base.name, set()).add(node.field)
    return found


class _AosRewriter(NodeTransformer):
    def __init__(self, fields: Dict[str, Set[str]]):
        self.fields = fields
        self.rewritten = 0

    def visit_Member(self, node: ast.Member) -> ast.Node:
        self.generic_visit(node)
        if (
            isinstance(node.base, ast.Subscript)
            and isinstance(node.base.base, ast.Ident)
            and node.base.base.name in self.fields
        ):
            array = node.base.base.name
            self.rewritten += 1
            return ast.Subscript(
                ast.Ident(soa_name(array, node.field)), node.base.index
            )
        return node


def convert_aos_to_soa(
    program: ast.Program, arrays: Optional[List[str]] = None
) -> TransformReport:
    """Rewrite AoS accesses and clauses in place."""
    report = TransformReport(name="regularization:aos-to-soa", applied=False)
    detected = detect_aos_arrays(program)
    if arrays is not None:
        detected = {k: v for k, v in detected.items() if k in arrays}
    if not detected:
        report.reason = "no array-of-structures access patterns found"
        return report

    rewriter = _AosRewriter(detected)
    rewriter.visit(program)

    # Split every offload clause naming a converted array into per-field
    # clauses with the same direction and length.
    for node in walk(program):
        if isinstance(node, (ast.OffloadPragma, ast.OffloadTransferPragma)):
            new_clauses: List[ast.TransferClause] = []
            for clause in node.clauses:
                if clause.var in detected:
                    for field in sorted(detected[clause.var]):
                        new_clauses.append(
                            ast.TransferClause(
                                clause.direction,
                                soa_name(clause.var, field),
                                start=clause.start,
                                length=clause.length,
                                alloc_if=clause.alloc_if,
                                free_if=clause.free_if,
                            )
                        )
                else:
                    new_clauses.append(clause)
            node.clauses = new_clauses

    report.applied = True
    for array, fields in sorted(detected.items()):
        report.note(f"{array} -> {', '.join(soa_name(array, f) for f in sorted(fields))}")
    return report


def soa_arrays(structured: np.ndarray, name: str) -> Dict[str, np.ndarray]:
    """Split a numpy structured array into the transform's field arrays."""
    if structured.dtype.names is None:
        raise ValueError(f"{name!r} is not a structured array")
    return {
        soa_name(name, field): np.ascontiguousarray(structured[field]).copy()
        for field in structured.dtype.names
    }
