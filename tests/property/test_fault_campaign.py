"""Campaign-level fault-injection properties.

Two system-wide invariants backstop the resilience work:

* **determinism** — a campaign is a pure function of its seed: running
  it twice yields byte-equal summaries (same faults at the same
  operations, same recovery costs, same outputs);
* **engine independence** — the interpreter engine (batched numpy vs
  tree walker) changes how device bodies are evaluated, never *what*
  the offload runtime does, so the same fault plan produces identical
  outputs and identical :class:`FaultStats` under either engine.
"""

import numpy as np

from repro.faults import FaultPlan, ResiliencePolicy
from repro.faults.campaign import outputs_identical, run_campaign, scenario_seed
from repro.workloads.suite import get_workload

#: Rates high enough that a two-scenario campaign always injects
#: something, so the determinism assertions are not vacuous.
HOT_RATES = {"h2d": 0.2, "d2h": 0.2, "kernel": 0.1, "alloc": 0.02, "signal": 0.1}


class TestCampaignDeterminism:
    def test_same_seed_same_summary(self):
        first = run_campaign(["blackscholes"], scenarios=2, seed=5, rates=HOT_RATES)
        second = run_campaign(["blackscholes"], scenarios=2, seed=5, rates=HOT_RATES)
        assert first.totals.total_injected > 0
        assert first.as_dict() == second.as_dict()

    def test_contract_holds_under_hot_rates(self):
        result = run_campaign(["blackscholes"], scenarios=3, seed=11, rates=HOT_RATES)
        assert result.ok
        for outcome in result.outcomes:
            assert outcome.identical
            if outcome.faults_injected:
                assert outcome.time > outcome.baseline_time

    def test_scenarios_are_decorrelated(self):
        """Different scenario cells draw from independent fault streams."""
        seeds = {
            scenario_seed(0, k, name)
            for k in range(3)
            for name in ("blackscholes", "nn")
        }
        assert len(seeds) == 6


class TestEngineDifferential:
    def _run(self, engine):
        plan_seed = scenario_seed(3, 0, "blackscholes")
        workload = get_workload("blackscholes")
        machine = workload.machine(
            fault_plan=FaultPlan(seed=plan_seed, rates=HOT_RATES),
            resilience=ResiliencePolicy(),
        )
        run = workload.run("opt", machine=machine, engine=engine)
        return run, machine

    def test_batch_and_tree_agree_under_faults(self):
        batch_run, batch_machine = self._run("batch")
        tree_run, tree_machine = self._run("tree")
        assert batch_machine.fault_stats.total_injected > 0
        assert outputs_identical(batch_run.outputs, tree_run.outputs)
        assert (
            batch_machine.fault_stats.as_dict()
            == tree_machine.fault_stats.as_dict()
        )
        assert np.isclose(batch_machine.clock.now, tree_machine.clock.now)

    def test_fault_stats_flow_into_workload_run(self):
        run, machine = self._run("batch")
        assert run.fault_stats is machine.fault_stats


#: Rates mixing announced faults with every silent kind, hot enough
#: that a two-scenario campaign exercises the whole coverage matrix.
SILENT_RATES = {
    "h2d": 0.1,
    "h2d:silent": 0.05,
    "d2h:silent": 0.05,
    "kernel:sdc": 0.03,
}


class TestSilentCampaigns:
    def test_full_integrity_detects_every_silent_fault(self):
        result = run_campaign(
            ["blackscholes"], scenarios=2, seed=3, rates=SILENT_RATES,
            policy=ResiliencePolicy(
                integrity_mode="full", checkpoint_interval=2
            ),
        )
        totals = result.totals
        assert result.ok
        assert totals.silent_injected > 0
        assert totals.silent_detected == totals.silent_injected
        assert totals.sdc_escapes == 0
        for outcome in result.outcomes:
            assert outcome.identical
            assert outcome.error is None
        for cell in totals.coverage.values():
            assert cell["injected"] == cell["detected"] + cell["escaped"]
            assert cell["corrected"] == cell["detected"]

    def test_off_mode_books_every_silent_fault_as_escape(self):
        rates = {k: v for k, v in SILENT_RATES.items() if ":" in k}
        result = run_campaign(
            ["blackscholes"], scenarios=2, seed=3, rates=rates,
            policy=ResiliencePolicy(integrity_mode="off"),
        )
        totals = result.totals
        assert totals.silent_injected > 0
        assert totals.silent_detected == 0
        assert totals.sdc_escapes == totals.silent_injected
        # Escaped corruption reaching the output (or crashing the run)
        # is exactly what "off" reports — not a contract violation.
        assert result.ok

    def test_silent_campaign_is_deterministic(self):
        policy = ResiliencePolicy(integrity_mode="full", checkpoint_interval=2)
        first = run_campaign(
            ["blackscholes"], scenarios=1, seed=9, rates=SILENT_RATES,
            policy=policy,
        )
        second = run_campaign(
            ["blackscholes"], scenarios=1, seed=9, rates=SILENT_RATES,
            policy=policy,
        )
        assert first.as_dict() == second.as_dict()
