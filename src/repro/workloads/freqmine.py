"""freqmine (PARSEC): FP-growth frequent itemset mining.

Shape: the FP-tree is a large pointer-based structure — "benchmark
freqmine performs 912 shared memory allocations at runtime and requires
183 MB shared memory" (Table III) — but, unlike ferret, mining is heavily
compute-dominated, so replacing MYO's page faults with the arena's bulk
DMA yields only the paper's modest 1.16x.  The tree traversals are
pointer-chasing with limited task parallelism, so the coprocessor does
not beat the host on freqmine either.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.hardware.device import OpCounters
from repro.runtime.arena import ArenaAllocator
from repro.runtime.executor import Machine
from repro.runtime.myo import MyoRuntime
from repro.workloads.base import SharedMemoryWorkload, Table2Row

TOTAL_ALLOCATIONS = 912
TOTAL_BYTES = 183 * (1 << 20)
STATIC_ALLOC_SITES = 7
#: Mining task parallelism is modest (conditional-FP-tree tasks), well
#: under the MIC's thread count — freqmine never beats the host.
MINING_TASKS = 48
#: Work per mining task, calibrated so transfer is a sliver of runtime
#: (the reason freqmine's shared-memory gain is only 1.16x).
FLOPS_PER_TASK = 8.0e8

MINIC_SNIPPET = """
void build_fp_tree(int nitems) {
    header_table = Offload_shared_malloc(65536);
    item_counts = Offload_shared_malloc(32768);
    tree_root = Offload_shared_malloc(128);
    node_pool = Offload_shared_malloc(16777216);
    pattern_base = Offload_shared_malloc(1048576);
    link_table = Offload_shared_malloc(262144);
    result_buf = Offload_shared_malloc(524288);
}
"""


class FreqmineWorkload(SharedMemoryWorkload):
    """Drives FP-growth mining over the three runtimes."""
    def __init__(self) -> None:
        super().__init__(
            name="freqmine",
            table2=Table2Row(
                suite="PARSEC",
                paper_input="250000 web docs",
                kloc=2.196,
                shared_memory=1.16,
            ),
        )
        self.minic_snippet = MINIC_SNIPPET
        self.static_alloc_sites = STATIC_ALLOC_SITES
        self.total_allocations = TOTAL_ALLOCATIONS

    def _mining_result(self) -> Dict[str, np.ndarray]:
        rng = self._rng(3131)
        supports = rng.integers(1, 1000, MINING_TASKS)
        return {"supports": np.sort(supports)[::-1].astype(np.int32)}

    def _compute_counters(self) -> OpCounters:
        flops = FLOPS_PER_TASK * MINING_TASKS
        return OpCounters(
            flops=flops,
            loads=flops / 4.0,
            bytes_read=flops,
            irregular_accesses=flops / 8.0,
        )

    def _run_cpu(self, machine: Machine) -> Dict[str, np.ndarray]:
        machine.clock.advance(
            machine.cpu_model.compute_time(
                self._compute_counters(),
                parallel_iterations=MINING_TASKS,
                vectorizable=False,
            )
        )
        return self._mining_result()

    def _run_mic_myo(self, machine: Machine) -> Dict[str, np.ndarray]:
        myo = MyoRuntime(machine.coi)
        alloc_bytes = TOTAL_BYTES // TOTAL_ALLOCATIONS
        addrs = [myo.shared_malloc(alloc_bytes) for _ in range(TOTAL_ALLOCATIONS)]
        self._offload_compute(machine)
        for addr in addrs:
            myo.device_access(addr, alloc_bytes)
        self._myo_stats = myo.stats
        return self._mining_result()

    def _run_mic_arena(self, machine: Machine) -> Dict[str, np.ndarray]:
        arena = ArenaAllocator(chunk_bytes=32 << 20)
        alloc_bytes = TOTAL_BYTES // TOTAL_ALLOCATIONS
        for _ in range(TOTAL_ALLOCATIONS):
            arena.allocate(alloc_bytes)
        arena.copy_to_device(machine.coi)
        self._offload_compute(machine)
        self._arena = arena
        return self._mining_result()

    def _offload_compute(self, machine: Machine) -> None:
        event = machine.coi.launch_kernel(
            machine.mic_model.compute_time(
                self._compute_counters(),
                parallel_iterations=MINING_TASKS,
                vectorizable=False,
            ),
            label="freqmine-mining",
        )
        machine.clock.wait_until(event)


def make() -> FreqmineWorkload:
    """Construct the freqmine workload instance."""
    return FreqmineWorkload()
