"""Shared numpy-backed math builtins for all three execution engines.

The tree walker, the batch engine, and the codegen engine must produce
bit-identical outputs.  numpy's float64 ufuncs (``np.exp`` …) are not
bitwise equal to libm's (:mod:`math`) for every input, so the engines
cannot mix the two families.  This module makes *numpy* the single
reference implementation:

* the tree walker calls the scalar wrappers below (one element at a
  time, through ``_BUILTIN_IMPL``);
* the batch and codegen engines call the vector implementations over
  whole lane vectors.

numpy evaluates a 0-d/scalar ufunc call through the same kernel as the
corresponding lane of a vectorized call, so scalar and vector results
are bitwise equal by construction (the engine-differential suite pins
this).  What numpy does **not** share with :mod:`math` is error
behaviour — ufuncs return ``nan``/``inf`` where ``math.log`` raises —
so each wrapper restores the :mod:`math` error contract exactly:
``ValueError("math domain error")`` and ``OverflowError("math range
error")`` under the same conditions ``math.exp``/``log``/``sin``/
``cos``/``pow`` raise them.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "scalar_exp",
    "scalar_log",
    "scalar_sin",
    "scalar_cos",
    "scalar_pow",
    "vector_exp",
    "vector_log",
    "vector_sin",
    "vector_cos",
    "vector_pow",
]


# --------------------------------------------------------------------------
# Scalar wrappers (tree walker)
# --------------------------------------------------------------------------


def scalar_exp(x):
    """``math.exp`` semantics computed through ``np.exp``."""
    x = float(x)
    r = float(np.exp(x))
    if math.isinf(r) and not math.isinf(x):
        raise OverflowError("math range error")
    return r


def scalar_log(x):
    """``math.log`` semantics computed through ``np.log``."""
    x = float(x)
    if x <= 0.0:
        raise ValueError("math domain error")
    return float(np.log(x))


def scalar_sin(x):
    """``math.sin`` semantics computed through ``np.sin``."""
    x = float(x)
    if math.isinf(x):
        raise ValueError("math domain error")
    return float(np.sin(x))


def scalar_cos(x):
    """``math.cos`` semantics computed through ``np.cos``."""
    x = float(x)
    if math.isinf(x):
        raise ValueError("math domain error")
    return float(np.cos(x))


def scalar_pow(x, y):
    """``math.pow`` semantics computed through ``np.power``.

    Both arguments are forced to float64 first — ``np.power(2, 3)``
    would otherwise stay integer where ``math.pow`` returns a float.
    """
    x = float(x)
    y = float(y)
    with np.errstate(all="ignore"):
        r = float(np.power(np.float64(x), np.float64(y)))
    if math.isnan(r) and not (math.isnan(x) or math.isnan(y)):
        raise ValueError("math domain error")
    if math.isinf(r) and not (math.isinf(x) or math.isinf(y)):
        if x == 0.0:
            raise ValueError("math domain error")
        raise OverflowError("math range error")
    return r


# --------------------------------------------------------------------------
# Vector implementations (batch + codegen engines)
# --------------------------------------------------------------------------


def vector_exp(a):
    """Vector ``exp`` with ``math.exp``'s overflow contract.

    The second ``isinf`` pass (was the *input* already infinite, which
    ``math.exp`` forgives?) only runs when the result overflowed
    somewhere — the common all-finite case costs exp + isinf + any."""
    with np.errstate(all="ignore"):
        r = np.exp(a)
    bad = np.isinf(r)
    if bad.any():
        if bool((bad & ~np.isinf(a)).any()):
            raise OverflowError("math range error")
    return r


def vector_log(a):
    """Vector ``log`` with ``math.log``'s domain contract."""
    if (a <= 0.0).any():
        raise ValueError("math domain error")
    with np.errstate(all="ignore"):
        return np.log(a)


def vector_sin(a):
    """Vector ``sin`` with ``math.sin``'s domain contract."""
    if np.isinf(a).any():
        raise ValueError("math domain error")
    return np.sin(a)


def vector_cos(a):
    """Vector ``cos`` with ``math.cos``'s domain contract."""
    if np.isinf(a).any():
        raise ValueError("math domain error")
    return np.cos(a)


def vector_pow(a, b):
    """Vector ``pow`` with ``math.pow``'s domain/range contract.

    Either argument may be a scalar; the error raised matches what the
    tree walker would raise on the first offending lane.
    """
    with np.errstate(all="ignore"):
        r = np.power(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))
    if not (np.isnan(r) | np.isinf(r)).any():
        return r  # all results finite: no contract to enforce
    ab = np.broadcast_to(np.asarray(a, dtype=np.float64), r.shape)
    bb = np.broadcast_to(np.asarray(b, dtype=np.float64), r.shape)
    bad = (np.isnan(r) & ~(np.isnan(ab) | np.isnan(bb))) | (
        np.isinf(r) & ~(np.isinf(ab) | np.isinf(bb))
    )
    if bool(np.any(bad)):
        i = int(np.argmax(bad))
        if np.isnan(r.flat[i]) or ab.flat[i] == 0.0:
            raise ValueError("math domain error")
        raise OverflowError("math range error")
    return r


#: Scalar implementations keyed by builtin name (what the tree walker's
#: ``_BUILTIN_IMPL`` splices in for the libm-divergent builtins).
SCALAR_IMPL = {
    "exp": scalar_exp,
    "log": scalar_log,
    "sin": scalar_sin,
    "cos": scalar_cos,
    "pow": scalar_pow,
}

#: Single-argument vector implementations keyed by builtin name.
VECTOR_IMPL = {
    "exp": vector_exp,
    "log": vector_log,
    "sin": vector_sin,
    "cos": vector_cos,
}
