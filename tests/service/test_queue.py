"""Tests for the admission-controlled priority queue."""

import asyncio
from dataclasses import dataclass

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.queue import AdmissionQueue, AdmissionRejected


@dataclass
class FakeJob:
    name: str
    priority: int = 1

    @property
    def spec(self):
        return self


def drain(queue):
    async def pop_all():
        return [
            (await queue.get()).name for _ in range(queue.depth)
        ]

    return asyncio.run(pop_all())


class TestOrdering:
    def test_priority_then_fifo(self):
        queue = AdmissionQueue(max_depth=16)
        for job in (
            FakeJob("batch1", priority=2),
            FakeJob("interactive", priority=0),
            FakeJob("batch2", priority=2),
            FakeJob("normal", priority=1),
        ):
            queue.offer(job)
        assert drain(queue) == ["interactive", "normal", "batch1", "batch2"]

    def test_get_waits_for_offer(self):
        queue = AdmissionQueue(max_depth=4)

        async def scenario():
            waiter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)
            assert not waiter.done()
            queue.offer(FakeJob("late"))
            return (await waiter).name

        assert asyncio.run(scenario()) == "late"


class TestAdmission:
    def test_rejects_past_high_water(self):
        queue = AdmissionQueue(max_depth=8, high_water=3)
        for i in range(3):
            queue.offer(FakeJob(f"j{i}"))
        with pytest.raises(AdmissionRejected) as exc:
            queue.offer(FakeJob("overflow"))
        assert exc.value.depth == 3
        assert exc.value.retry_after > 0
        assert queue.rejected == 1
        assert queue.accepted == 3

    def test_retry_after_grows_with_backlog(self):
        queue = AdmissionQueue(max_depth=64, high_water=2)
        assert queue.retry_after(2) < queue.retry_after(10)

    def test_retry_after_deterministic(self):
        q1 = AdmissionQueue(max_depth=8, high_water=4)
        q2 = AdmissionQueue(max_depth=8, high_water=4)
        assert q1.retry_after(6) == q2.retry_after(6)

    def test_default_high_water_is_three_quarters(self):
        assert AdmissionQueue(max_depth=64).high_water == 48

    def test_validation(self):
        with pytest.raises(ValueError, match="max_depth"):
            AdmissionQueue(max_depth=0)
        with pytest.raises(ValueError, match="high_water"):
            AdmissionQueue(max_depth=4, high_water=9)

    def test_metrics(self):
        metrics = MetricsRegistry()
        queue = AdmissionQueue(max_depth=8, high_water=1, metrics=metrics)
        queue.offer(FakeJob("a"))
        with pytest.raises(AdmissionRejected):
            queue.offer(FakeJob("b"))
        counters = metrics.snapshot()["counters"]
        assert counters["service.queue.accepted"] == 1
        assert counters["service.queue.rejected"] == 1
        assert metrics.snapshot()["gauges"]["service.queue.depth"]["max"] == 1

    def test_drain_returns_in_order(self):
        queue = AdmissionQueue(max_depth=8)
        queue.offer(FakeJob("b", priority=2))
        queue.offer(FakeJob("a", priority=0))
        assert [job.name for job in queue.drain()] == ["a", "b"]
        assert queue.depth == 0

    def test_drain_orders_mixed_priorities_during_shutdown(self):
        # The shutdown path must fail queued jobs in the order they
        # would have run: priority first, FIFO within a priority —
        # regardless of interleaved offers and partial consumption.
        queue = AdmissionQueue(max_depth=16, high_water=16)
        queue.offer(FakeJob("batch1", priority=2))
        queue.offer(FakeJob("inter1", priority=0))
        queue.offer(FakeJob("chaos1", priority=3))
        queue.offer(FakeJob("inter2", priority=0))
        queue.offer(FakeJob("batch2", priority=2))

        async def pop_one():
            return (await queue.get()).name

        # A worker takes the best job, then the service shuts down.
        assert asyncio.run(pop_one()) == "inter1"
        drained = [job.name for job in queue.drain()]
        assert drained == ["inter2", "batch1", "batch2", "chaos1"]
        assert queue.depth == 0
        # Draining is terminal for the backlog, not for the queue: a
        # late offer still works (the service layer gates admission).
        queue.offer(FakeJob("late"))
        assert queue.depth == 1
