"""MiniC: the C-like source language that COMP transforms operate on.

The paper implements its optimizations as source-to-source rewrites over C
ASTs (built with pycparser inside the Apricot framework).  MiniC is our
self-contained equivalent: a small, typed, C-like language with

* LEO-style pragmas (``#pragma offload``, ``#pragma offload_transfer``,
  ``#pragma offload_wait``, ``#pragma omp parallel for``),
* arrays, structs, pointers and the arithmetic needed by the paper's
  twelve benchmarks, and
* a printer that regenerates compilable-looking source, so every transform
  is testable as text-to-text.

Public entry points:

>>> from repro.minic import parse, to_source
>>> prog = parse("void main() { int x; x = 1 + 2; }")
>>> print(to_source(prog))  # doctest: +SKIP
"""

from repro.minic.lexer import tokenize
from repro.minic.parser import parse, parse_expr, parse_pragma
from repro.minic.printer import to_source
from repro.minic.visitor import NodeTransformer, NodeVisitor, walk

__all__ = [
    "tokenize",
    "parse",
    "parse_expr",
    "parse_pragma",
    "to_source",
    "NodeVisitor",
    "NodeTransformer",
    "walk",
]
