#!/usr/bin/env python
"""Regularization of irregular memory accesses (Section IV).

Two demos on the paper's own patterns:

* srad's loop — irregular neighbour reads followed by regular diffusion
  math.  Loop splitting isolates the irregular prefix so the math half
  vectorizes (Figure 7).
* nn's loop — strided record-field reads ``records[4*i]``.  Array
  reordering gathers the two used fields into dense arrays, removing the
  unused record bytes from the PCIe bus (Figure 8).

Run:  python examples/irregular_accesses.py
"""

import numpy as np

from repro import parse, to_source
from repro.runtime.executor import Machine, run_program
from repro.transforms.regularize import reorder_arrays, split_loop

SRAD = """
void main() {
#pragma offload target(mic:0) in(J : length(n)) in(iN : length(n)) in(iS : length(n)) in(n) out(dN : length(n)) out(dS : length(n)) out(R : length(n))
#pragma omp parallel for
    for (int k = 0; k < n; k++) {
        float Jc = J[k];
        dN[k] = J[iN[k]] - Jc;
        dS[k] = J[iS[k]] - Jc;
        float G2 = (dN[k] * dN[k] + dS[k] * dS[k]) / (Jc * Jc + 0.01);
        float L = (dN[k] + dS[k]) / (Jc + 0.01);
        R[k] = (0.5 * G2 - 0.0625 * L * L) / ((1.0 + 0.25 * L) * (1.0 + 0.25 * L))
            + sqrt(G2 + 1.0) * exp(-0.25 * L);
    }
}
"""

NN = """
void main() {
#pragma offload target(mic:0) in(records : length(4 * (n - 1) + 2)) in(n) out(dist : length(n))
#pragma omp parallel for
    for (int i = 0; i < n; i++) {
        float dlat = records[4 * i] - 30.0;
        float dlng = records[4 * i + 1] - 90.0;
        dist[i] = sqrt(dlat * dlat + dlng * dlng);
    }
}
"""

N = 2048
SCALE = 1_000_000 / N


def srad_arrays():
    rng = np.random.default_rng(5)
    return {
        "J": (rng.random(N) + 0.1).astype(np.float32),
        "iN": rng.integers(0, N, N).astype(np.int32),
        "iS": rng.integers(0, N, N).astype(np.int32),
        "dN": np.zeros(N, dtype=np.float32),
        "dS": np.zeros(N, dtype=np.float32),
        "R": np.zeros(N, dtype=np.float32),
    }


def nn_arrays():
    rng = np.random.default_rng(6)
    return {
        "records": (rng.random(4 * N) * 180).astype(np.float32),
        "dist": np.zeros(N, dtype=np.float32),
    }


def compare(label, source, program, arrays_fn, outputs):
    before = run_program(
        source, arrays=arrays_fn(), scalars={"n": N},
        machine=Machine(scale=SCALE),
    )
    after = run_program(
        program, arrays=arrays_fn(), scalars={"n": N},
        machine=Machine(scale=SCALE),
    )
    for name in outputs:
        assert np.array_equal(before.array(name), after.array(name)), name
    t0, t1 = before.stats.total_time, after.stats.total_time
    b0 = before.stats.bytes_to_device / 2**20
    b1 = after.stats.bytes_to_device / 2**20
    print(f"{label}: {t0 * 1000:.2f} ms -> {t1 * 1000:.2f} ms "
          f"({t0 / t1:.2f}x); bytes to device {b0:.1f} -> {b1:.1f} MiB; "
          f"outputs identical")


def main() -> None:
    print("=== srad: loop splitting (Figure 7) ===")
    srad = parse(SRAD)
    report = split_loop(srad)
    print(f"split: {report.details[0]}")
    print(to_source(srad))
    compare("srad", SRAD, srad, srad_arrays, ["dN", "dS", "R"])

    print("\n=== nn: array reordering (Figure 8) ===")
    nn = parse(NN)
    report = reorder_arrays(nn)
    print(f"reorder: {report.details[0]}")
    print(to_source(nn))
    compare("nn", NN, nn, nn_arrays, ["dist"])


if __name__ == "__main__":
    main()
