"""Array access pattern analysis.

Section III-A of the paper applies data streaming "only when all array
indexes in a loop are in the form ``a * i + b``, where ``i`` is the loop
index and ``a`` and ``b`` are constants".  Section IV classifies the
irregular patterns it can regularize:

* **indirect** — ``A[B[i]]``: the index is a value loaded from another
  array (srad's ``J[iN[k]]``, the first loop of Figure 8);
* **strided** — ``A[k * i]`` with constant ``k > 1`` (nn, the second loop
  of Figure 8);
* **aos** — ``P[i].field``: array-of-structures access, regularized by
  AoS-to-SoA conversion.

This module extracts linear forms from index expressions and classifies
every array access in a loop body.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import NotAffineError
from repro.minic import ast_nodes as ast
from repro.minic.visitor import NodeVisitor, walk


class AccessKind(Enum):
    """Classification of one array access relative to the loop variable."""

    INVARIANT = "invariant"  # index does not involve the loop variable
    UNIT = "unit"  # a == 1: contiguous across iterations
    AFFINE = "affine"  # a*i + b with constant a not in {0, 1}
    INDIRECT = "indirect"  # index reads another array (A[B[i]])
    NONLINEAR = "nonlinear"  # e.g. A[i*i] — not analyzable
    AOS = "aos"  # P[i].field


@dataclass(frozen=True)
class LinearForm:
    """An index expression reduced to ``coeff * i + const``.

    ``coeff`` and ``const`` are Python numbers when the expression uses
    only integer literals and the loop variable; symbolic coefficients
    (e.g. ``bsize``) are reduced against *bindings* if provided, otherwise
    extraction fails with :class:`NotAffineError`.
    """

    coeff: int
    const: int

    @property
    def stride(self) -> int:
        """The per-iteration element stride (the coefficient a)."""
        return self.coeff


@dataclass
class ArrayAccess:
    """One syntactic array access inside a loop body."""

    array: str
    index: ast.Expr
    is_write: bool
    kind: AccessKind
    linear: Optional[LinearForm] = None
    guarded: bool = False  # appears under an if/ternary (Section IV safety rule)
    field: Optional[str] = None  # set for AoS accesses


def extract_linear_form(
    expr: ast.Expr, loop_var: str, bindings: Optional[Dict[str, int]] = None
) -> LinearForm:
    """Reduce *expr* to ``a*i + b`` or raise :class:`NotAffineError`.

    *bindings* supplies integer values for loop-invariant symbols that
    appear in coefficients (e.g. a row width ``cols``); without a binding a
    symbolic name is not a constant and extraction fails, matching the
    conservative compile-time rule in the paper.
    """
    bindings = bindings or {}

    def reduce(e: ast.Expr) -> LinearForm:
        if isinstance(e, ast.IntLit):
            return LinearForm(0, e.value)
        if isinstance(e, ast.Ident):
            if e.name == loop_var:
                return LinearForm(1, 0)
            if e.name in bindings:
                return LinearForm(0, bindings[e.name])
            raise NotAffineError(f"symbol {e.name!r} is not a known constant")
        if isinstance(e, ast.UnOp) and e.op == "-":
            inner = reduce(e.operand)
            return LinearForm(-inner.coeff, -inner.const)
        if isinstance(e, ast.BinOp):
            if e.op == "+":
                lhs, rhs = reduce(e.left), reduce(e.right)
                return LinearForm(lhs.coeff + rhs.coeff, lhs.const + rhs.const)
            if e.op == "-":
                lhs, rhs = reduce(e.left), reduce(e.right)
                return LinearForm(lhs.coeff - rhs.coeff, lhs.const - rhs.const)
            if e.op == "*":
                lhs, rhs = reduce(e.left), reduce(e.right)
                if lhs.coeff != 0 and rhs.coeff != 0:
                    raise NotAffineError("product of two loop-variant terms")
                if lhs.coeff == 0:
                    return LinearForm(lhs.const * rhs.coeff, lhs.const * rhs.const)
                return LinearForm(lhs.coeff * rhs.const, lhs.const * rhs.const)
            if e.op == "/":
                lhs, rhs = reduce(e.left), reduce(e.right)
                if rhs.coeff != 0 or rhs.const == 0:
                    raise NotAffineError("division by loop-variant or zero")
                if lhs.coeff % rhs.const or lhs.const % rhs.const:
                    raise NotAffineError("division does not preserve linearity")
                return LinearForm(lhs.coeff // rhs.const, lhs.const // rhs.const)
            raise NotAffineError(f"operator {e.op!r} is not affine")
        if isinstance(e, ast.Subscript):
            raise NotAffineError("index depends on an array element")
        raise NotAffineError(f"cannot analyze {type(e).__name__}")

    return reduce(expr)


def _index_uses_array(expr: ast.Expr) -> bool:
    return any(isinstance(n, ast.Subscript) for n in walk(expr))


def _index_uses_var(expr: ast.Expr, loop_var: str) -> bool:
    return any(
        isinstance(n, ast.Ident) and n.name == loop_var for n in walk(expr)
    )


class _AccessCollector(NodeVisitor):
    """Walks a loop body collecting classified array accesses."""

    def __init__(self, loop_var: str, bindings: Optional[Dict[str, int]] = None):
        self.loop_var = loop_var
        self.bindings = bindings or {}
        self.accesses: List[ArrayAccess] = []
        self._guard_depth = 0
        self._write_target: Optional[ast.Expr] = None

    # -- guards ------------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.cond)
        self._guard_depth += 1
        self.visit(node.then)
        if node.other is not None:
            self.visit(node.other)
        self._guard_depth -= 1

    def visit_Cond(self, node: ast.Cond) -> None:
        self.visit(node.cond)
        self._guard_depth += 1
        self.visit(node.then)
        self.visit(node.other)
        self._guard_depth -= 1

    # -- writes --------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._write_target = node.target
        self.visit(node.target)
        self._write_target = None
        self.visit(node.value)
        if node.op != "=" and isinstance(node.target, (ast.Subscript, ast.Member)):
            # Compound assignment also reads the target element.
            self._record(node.target, is_write=False)

    # -- reads -----------------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        self._record(node, is_write=self._write_target is node)
        # Recurse into the index to catch nested accesses (B[i] in A[B[i]]).
        saved = self._write_target
        self._write_target = None
        self.visit(node.index)
        self._write_target = saved
        if not isinstance(node.base, ast.Ident):
            self.visit(node.base)

    def visit_Member(self, node: ast.Member) -> None:
        if isinstance(node.base, ast.Subscript):
            self._record(
                node.base,
                is_write=self._write_target is node,
                field=node.field,
            )
            saved = self._write_target
            self._write_target = None
            self.visit(node.base.index)
            self._write_target = saved
        else:
            self.generic_visit(node)

    # -- recording -------------------------------------------------------------

    def _record(
        self, node: ast.Subscript, is_write: bool, field: Optional[str] = None
    ) -> None:
        if not isinstance(node.base, ast.Ident):
            return
        array = node.base.name
        kind, linear = self._classify(node.index)
        if field is not None and kind in (AccessKind.UNIT, AccessKind.AFFINE):
            kind = AccessKind.AOS
        self.accesses.append(
            ArrayAccess(
                array=array,
                index=node.index,
                is_write=is_write,
                kind=kind,
                linear=linear,
                guarded=self._guard_depth > 0,
                field=field,
            )
        )

    def _classify(self, index: ast.Expr):
        if _index_uses_array(index):
            return AccessKind.INDIRECT, None
        try:
            form = extract_linear_form(index, self.loop_var, self.bindings)
        except NotAffineError:
            if _index_uses_var(index, self.loop_var):
                return AccessKind.NONLINEAR, None
            return AccessKind.INVARIANT, None
        if form.coeff == 0:
            return AccessKind.INVARIANT, form
        if form.coeff == 1:
            return AccessKind.UNIT, form
        return AccessKind.AFFINE, form


def loop_variable(loop: ast.For) -> str:
    """Extract the induction variable name from a canonical for loop."""
    if isinstance(loop.init, ast.VarDecl):
        return loop.init.name
    if isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Ident):
        return loop.init.target.name
    raise NotAffineError("loop has no recognizable induction variable")


def classify_accesses(
    loop: ast.For, bindings: Optional[Dict[str, int]] = None
) -> List[ArrayAccess]:
    """Classify every array access in the body of *loop*."""
    collector = _AccessCollector(loop_variable(loop), bindings)
    collector.visit(loop.body)
    return collector.accesses


def is_streamable(
    loop: ast.For, bindings: Optional[Dict[str, int]] = None
) -> bool:
    """The paper's streaming legality check (Section III-A).

    True when every array access in the loop is affine in the loop
    variable — i.e. no indirect, nonlinear, or AoS accesses.  Invariant
    accesses are fine (scalars and broadcast reads are copied once).
    """
    allowed = {AccessKind.UNIT, AccessKind.AFFINE, AccessKind.INVARIANT}
    return all(a.kind in allowed for a in classify_accesses(loop, bindings))


def irregular_accesses(
    loop: ast.For, bindings: Optional[Dict[str, int]] = None
) -> List[ArrayAccess]:
    """Accesses that block streaming/vectorization (Section IV targets)."""
    bad = {AccessKind.INDIRECT, AccessKind.NONLINEAR, AccessKind.AOS}
    result = [a for a in classify_accesses(loop, bindings) if a.kind in bad]
    # Strided accesses (constant coeff > 1) are also irregular per Figure 8.
    result.extend(
        a
        for a in classify_accesses(loop, bindings)
        if a.kind is AccessKind.AFFINE and abs(a.linear.coeff) > 1
    )
    return result
