"""Offload merging (Section III-C, Figure 6).

"In many applications such as streamcluster, a large loop may contain
multiple parallel inner loops.  Each inner loop is offloaded ...  To
reduce the overhead, we merge the small offloads into a large offload and
hoist the large offload out of the parent loop."

The parent loop becomes a single device region (our
:class:`~repro.minic.ast_nodes.OffloadBlock`): the inner loops keep their
``omp parallel for`` pragmas and run threaded on the coprocessor, the
serial glue between them now runs (slowly) on a MIC core — the explicit
trade the paper accepts — and the merged region's clauses are inferred
from the liveness of the whole parent loop, seeded with the transfer
lengths the inner offloads already carried (Section III-C: "The
in/out/inout clauses of each inner loop are combined to populate the
in/out/inout clauses for the outer loop").

Hand-pipelined code — inner offloads using ``signal``/``wait`` or
explicit ``offload_transfer`` statements (dedup's manually streamed
loops) — is left untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AnalysisError
from repro.analysis.offload import infer_offload_pragma
from repro.minic import ast_nodes as ast
from repro.minic.visitor import clone, get_pragma, walk
from repro.transforms.base import TransformReport, replace_statement


def _inner_offload_loops(parent: ast.For) -> List[ast.For]:
    return [
        node
        for node in walk(parent.body)
        if isinstance(node, ast.For)
        and get_pragma(node, ast.OffloadPragma) is not None
    ]


def _is_hand_pipelined(parent: ast.For) -> bool:
    """True when the parent's body already does asynchronous offloading."""
    for node in walk(parent.body):
        if isinstance(node, ast.PragmaStmt) and isinstance(
            node.pragma, (ast.OffloadTransferPragma, ast.OffloadWaitPragma)
        ):
            return True
        if isinstance(node, ast.For):
            pragma = get_pragma(node, ast.OffloadPragma)
            if pragma is not None and (
                pragma.signal is not None or pragma.wait is not None
            ):
                return True
        if isinstance(node, ast.OffloadBlock):
            return True
    return False


def merge_offloads(
    program: ast.Program,
    parent: Optional[ast.For] = None,
    array_lengths: Optional[Dict[str, ast.Expr]] = None,
) -> TransformReport:
    """Hoist the inner offloads of *parent* into one merged offload."""
    report = TransformReport(name="offload-merging", applied=False)
    target = parent if parent is not None else _find_parent_loop(program)
    if target is None:
        report.reason = "no serial loop containing offloaded inner loops"
        return report
    inner = _inner_offload_loops(target)
    if len(inner) < 2 and parent is None:
        # Figure 6's pattern is "multiple parallel inner loops"; a single
        # repeated offload is streaming's territory (thread reuse).
        report.reason = "parent loop contains fewer than two offloaded loops"
        return report
    if not inner:
        report.reason = "parent loop contains no offloaded inner loops"
        return report
    if _is_hand_pipelined(target):
        report.reason = "parent loop is already hand-pipelined"
        return report

    # Transfer lengths already worked out for the inner offloads seed the
    # whole-region inference.
    hints: Dict[str, ast.Expr] = dict(array_lengths or {})
    for loop in inner:
        pragma = get_pragma(loop, ast.OffloadPragma)
        for clause in pragma.clauses:
            if clause.length is not None and clause.var not in hints:
                hints[clause.var] = clone(clause.length)

    # Infer the merged clauses *before* touching the tree, on a scratch
    # copy of the loop with the inner offload pragmas removed (their
    # clause expressions are irrelevant to liveness).
    scratch = clone(target)
    for loop in _inner_offload_loops(scratch):
        loop.pragmas = [
            p for p in loop.pragmas if not isinstance(p, ast.OffloadPragma)
        ]
    try:
        merged_pragma = infer_offload_pragma(scratch, hints)
    except AnalysisError as exc:
        report.reason = f"cannot infer merged clauses: {exc}"
        return report

    for loop in inner:
        loop.pragmas = [
            p for p in loop.pragmas if not isinstance(p, ast.OffloadPragma)
        ]

    block = ast.OffloadBlock(merged_pragma, ast.Block([target]))
    if not replace_statement(program, target, [block]):
        report.reason = "parent loop not found in the program body"
        return report
    report.applied = True
    report.note(
        f"merged {len(inner)} inner offloads into one device region "
        f"({len(merged_pragma.clauses)} combined clauses)"
    )
    return report


def _find_parent_loop(program: ast.Program) -> Optional[ast.For]:
    """The outermost loop containing offloaded inner loops but itself not
    offloaded (and not hand-pipelined)."""
    inside_device: set = set()
    for node in walk(program):
        if isinstance(node, ast.OffloadBlock):
            for inner in walk(node.body):
                inside_device.add(id(inner))
    for node in walk(program):
        if id(node) in inside_device:
            continue
        if (
            isinstance(node, ast.For)
            and get_pragma(node, ast.OffloadPragma) is None
            and len(_inner_offload_loops(node)) >= 2
            and not _is_hand_pipelined(node)
        ):
            return node
    return None
