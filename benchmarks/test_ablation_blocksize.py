"""Ablation: block-count sweep versus the Section III-B analytic model.

Sweeps the number of streaming blocks N on blackscholes and compares the
measured optimum against the model's closed-form N*.  The paper: "we try
N with value 10, 20, 40 and 50 ... the best number of blocks for most
benchmarks is between 10 and 40."
"""

import dataclasses

from benchmarks.conftest import emit
from repro.experiments.report import render_table
from repro.transforms.block_size import optimal_block_count
from repro.transforms.streaming import StreamingOptions
from repro.workloads.suite import get_workload

SWEEP = [2, 5, 10, 20, 40, 80]


def run_with_blocks(num_blocks: int):
    workload = get_workload("blackscholes")
    workload.plan = dataclasses.replace(
        workload.plan,
        streaming_options=StreamingOptions(num_blocks=num_blocks),
    )
    return workload.run("opt")


def test_blocksize_sweep_vs_model(benchmark, runner):
    def sweep():
        return {n: run_with_blocks(n).time for n in SWEEP}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)

    mic = runner.run_variant("blackscholes", "mic").stats
    model_n = optimal_block_count(
        transfer=mic.transfer_time,
        compute=mic.device_compute_time,
        launch_overhead=1.0e-3,
        max_blocks=max(SWEEP),
    )
    rows = [
        [str(n), f"{t * 1000:.3f} ms", "*" if t == min(times.values()) else ""]
        for n, t in times.items()
    ]
    emit(render_table(["blocks N", "streamed time", "best"], rows))
    emit(f"analytic N* = {model_n} (paper: best N between 10 and 40)")

    measured_best = min(times, key=times.get)
    # The measured optimum and the model optimum bracket the same regime.
    assert 5 <= measured_best <= 80
    assert times[measured_best] < times[2]
    # The model's pick performs within 15% of the measured best.
    closest = min(SWEEP, key=lambda n: abs(n - model_n))
    assert times[closest] <= times[measured_best] * 1.15
