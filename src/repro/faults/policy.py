"""The resilience policy: how the runtime responds to faults.

All durations are *simulated* seconds on the paper machine, sized
against its overheads (kernel launch ~1 ms, signal ~10 us): detection
timeouts are an order of magnitude above the healthy operation they
guard, and backoff starts well below them so a single retry is cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tuning knobs for fault recovery.

    The default policy retries with exponential backoff, demotes
    un-streamed offloads that hit device OOM into streamed form, and
    falls back to host-CPU execution as the last resort — an offload
    under this policy completes unless a genuine (non-injected) error
    has no recovery path at all.
    """

    #: Re-issues allowed per operation after the first failed attempt.
    max_retries: int = 3
    #: First backoff pause; attempt ``k`` waits ``base * factor ** k``.
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    #: Cap on any single backoff pause.  A pause longer than the timeout
    #: guarding the operation would make the *wait* slower than the
    #: *failure detection* it follows, so when set the cap must not
    #: exceed the smallest guarding timeout.  ``None`` leaves backoff
    #: uncapped (pure exponential), which is the historical behaviour.
    backoff_max: Optional[float] = None
    #: Host-side detection timeout for a stalled DMA transfer.
    transfer_timeout: float = 0.010
    #: Watchdog timeout for a hung kernel / dead persistent session.
    kernel_timeout: float = 0.050
    #: Re-poll timeout after a lost completion signal.
    signal_timeout: float = 0.020
    #: Link derating for a transfer that exhausted its retries and is
    #: pushed through anyway (retrained lanes, smaller TLPs).
    degraded_factor: float = 4.0
    #: Demote an un-streamed offload that hits device OOM to streamed
    #: form (block-granular transfers, two blocks resident per array).
    demote_on_oom: bool = True
    #: Allow abandoning a failed offload to host-CPU execution.
    host_fallback: bool = True
    #: Fixed migration cost charged before host fallback re-execution.
    fallback_penalty: float = 0.050
    #: Commit a restart checkpoint every N completed offload blocks;
    #: 0 (the default) disables checkpoint/restart entirely — no
    #: checkpoint manager is attached and timing is bit-identical to a
    #: run without the feature.  With checkpointing enabled, a
    #: ``device:reset`` fault is survivable: resident state is rebuilt
    #: and only blocks completed since the last commit are re-executed.
    checkpoint_interval: int = 0
    #: Simulated host time charged per checkpoint commit (writing the
    #: block index, d2h-completed output manifest, and arena generation
    #: to durable host memory).
    checkpoint_cost: float = 0.0002
    #: Device resets one run will survive before declaring the device
    #: lost (:class:`~repro.errors.DeviceLost`).
    max_resets: int = 8
    #: Checksum-verification coverage against *silent* corruption:
    #: ``"off"`` (the default) keeps no checksums and charges nothing —
    #: bit-identical to a build without the integrity layer; silent
    #: faults escape to host output and are counted as SDC escapes.
    #: ``"transfers"`` checksums DMA payloads and arena uploads (kernel
    #: SDC still escapes).  ``"full"`` adds kernel-output checksums,
    #: checkpoint-commit verification, periodic scrubbing, and a final
    #: sweep — every injected silent fault is detected and repaired.
    integrity_mode: str = "off"
    #: Simulated-seconds period of the background scrub that re-verifies
    #: all resident device buffers (``"full"`` mode only); 0 disables
    #: scrubbing.
    scrub_interval: float = 0.0
    #: Simulated seconds charged per *byte* checksummed at a verification
    #: point (~50 GB/s checksum engine by default).  Checksum
    #: *generation* is free — the model puts it inline in the DMA engine;
    #: only verification passes cost time.
    verify_cost: float = 2e-11
    #: Kernel re-executions allowed per output buffer when its checksum
    #: keeps failing, before escalating to checkpoint restore (or
    #: :class:`~repro.errors.SilentDataCorruption` with checkpointing
    #: disabled).
    max_reverify: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if self.backoff_max is not None:
            guard = min(
                self.transfer_timeout, self.kernel_timeout, self.signal_timeout
            )
            if self.backoff_max < self.backoff_base:
                raise ValueError(
                    f"backoff_max ({self.backoff_max}) must be >= "
                    f"backoff_base ({self.backoff_base})"
                )
            if self.backoff_max > guard:
                raise ValueError(
                    f"backoff_max ({self.backoff_max}) must not exceed the "
                    f"smallest guarding timeout ({guard}): waiting longer to "
                    f"retry than to detect the failure is never useful"
                )
        if self.degraded_factor < 1.0:
            raise ValueError("degraded_factor must be >= 1")
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0 (0 disables)")
        if self.checkpoint_cost < 0:
            raise ValueError("checkpoint_cost must be >= 0")
        if self.max_resets < 0:
            raise ValueError("max_resets must be >= 0")
        if self.integrity_mode not in ("off", "transfers", "full"):
            raise ValueError(
                f"integrity_mode must be one of 'off', 'transfers', 'full'; "
                f"got {self.integrity_mode!r}"
            )
        if self.scrub_interval < 0:
            raise ValueError("scrub_interval must be >= 0 (0 disables)")
        if self.verify_cost < 0:
            raise ValueError("verify_cost must be >= 0")
        if self.max_reverify < 0:
            raise ValueError("max_reverify must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Pause before re-issuing after failed attempt *attempt* (0-based)."""
        pause = self.backoff_base * self.backoff_factor ** attempt
        if self.backoff_max is not None:
            pause = min(pause, self.backoff_max)
        return pause
