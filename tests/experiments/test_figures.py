"""Tests for the figure/table regeneration harness (shape assertions).

These assert the *reproduction bands* — who wins, by roughly what factor,
where crossovers fall — not the paper's absolute numbers (the substrate
is a simulator, not the authors' testbed)."""

import pytest

from repro.experiments.figures import (
    FIG4_BENCHMARKS,
    MERGING_BENCHMARKS,
    REGULARIZATION_BENCHMARKS,
    STREAMING_BENCHMARKS,
    figure1,
    figure4,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.report import (
    render_bars,
    render_figure,
    render_table,
    render_table_data,
)
from repro.experiments.tables import table1_demo, table2, table3


class TestFigure1:
    def test_all_benchmarks_present(self, runner, suite_results):
        fig = figure1(runner)
        assert len(fig.series) == 12

    def test_eight_losers_note(self, runner, suite_results):
        fig = figure1(runner)
        assert "8 of 12" in fig.notes[0]


class TestFigure4:
    def test_benchmarks(self, runner, suite_results):
        fig = figure4(runner)
        assert list(fig.series) == FIG4_BENCHMARKS

    def test_transfer_dominates_for_blackscholes_and_nn(self, runner, suite_results):
        fig = figure4(runner)
        assert fig.series["blackscholes"] > 1.0
        assert fig.series["nn"] > 1.0

    def test_ratios_in_paper_band(self, runner, suite_results):
        """Figure 4's axis tops out at 3.5; ratios are order-one."""
        fig = figure4(runner)
        for name, ratio in fig.series.items():
            assert 0.5 < ratio < 6.0, (name, ratio)


class TestFigure10And11:
    def test_fig10_nine_winners(self, runner, suite_results):
        fig = figure10(runner)
        assert "9 of 12" in fig.notes[0]

    def test_fig10_carries_unoptimized_series(self, runner, suite_results):
        fig = figure10(runner)
        assert "mic without optimization" in fig.extra_series

    def test_fig11_nine_improved(self, runner, suite_results):
        fig = figure11(runner)
        assert "9 of 12" in fig.notes[0]

    def test_fig11_streamcluster_largest(self, runner, suite_results):
        fig = figure11(runner)
        assert max(fig.series, key=fig.series.get) == "streamcluster"


class TestFigure12:
    def test_streaming_benchmarks(self, runner):
        fig = figure12(runner)
        assert list(fig.series) == STREAMING_BENCHMARKS

    def test_all_gains_above_one(self, runner):
        fig = figure12(runner)
        for name, gain in fig.series.items():
            assert gain > 1.05, (name, gain)

    def test_average_in_band(self, runner):
        """Paper: 1.45x average."""
        assert 1.2 < figure12(runner).average < 2.5


class TestFigure13:
    def test_streamed_memory_reduced(self, runner):
        fig = figure13(runner)
        reduced = [v for n, v in fig.series.items() if n != "CG"]
        for value in reduced:
            assert value < 0.35

    def test_blackscholes_over_80_percent_reduction(self, runner):
        fig = figure13(runner)
        assert fig.series["blackscholes"] < 0.2


class TestFigure14:
    def test_merging_benchmarks(self, runner):
        fig = figure14(runner)
        assert list(fig.series) == MERGING_BENCHMARKS

    def test_order_of_magnitude_gains(self, runner):
        fig = figure14(runner)
        for name, gain in fig.series.items():
            assert gain > 10, (name, gain)

    def test_average_in_band(self, runner):
        """Paper: 27.13x average."""
        assert 15 < figure14(runner).average < 45


class TestFigure15:
    def test_regularization_benchmarks(self, runner):
        fig = figure15(runner)
        assert list(fig.series) == REGULARIZATION_BENCHMARKS

    def test_gains_in_band(self, runner):
        """Paper: nn 1.23x, srad 1.25x, average 1.25x."""
        fig = figure15(runner)
        for name, gain in fig.series.items():
            assert 1.05 < gain < 2.0, (name, gain)


class TestTables:
    def test_table1_semantics(self):
        data = table1_demo()
        assert len(data.rows) == 3
        # The round-trip demo must show the pointer coming back unchanged.
        assert data.rows[0][3].split(" -> ")[0] == data.rows[2][3].split(" -> ")[1]

    def test_table2_rows(self, runner, suite_results):
        data = table2(runner)
        assert len(data.rows) == 12
        by_name = {row[0]: row for row in data.rows}
        assert by_name["blackscholes"][4].startswith("yes")  # streaming
        assert by_name["blackscholes"][5] == "-"
        assert by_name["cfd"][5].startswith("yes")  # merging
        assert by_name["srad"][6].startswith("yes")  # regularization
        assert by_name["ferret"][7].startswith("yes")  # shared memory
        assert by_name["hotspot"][4:] == ["-", "-", "-", "-"]

    def test_table3_matches_paper_counts(self, runner, suite_results):
        data = table3(runner)
        by_name = {row[0]: row for row in data.rows}
        assert by_name["ferret"][1] == "19"
        assert by_name["ferret"][2] == "80298"
        assert "fails" in by_name["ferret"][4]
        assert by_name["freqmine"][1] == "7"
        assert by_name["freqmine"][2] == "912"
        assert "runs" in by_name["freqmine"][4]

    def test_table3_speedups_in_band(self, runner, suite_results):
        data = table3(runner)
        speedups = {row[0]: float(row[3]) for row in data.rows}
        assert 5.0 < speedups["ferret"] < 12.0  # paper: 7.81
        assert 1.05 < speedups["freqmine"] < 1.4  # paper: 1.16


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["a", "bench"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_render_bars_marks_reference(self):
        text = render_bars({"x": 2.0, "y": 0.5})
        assert "|" in text
        assert "2.000x" in text

    def test_render_bars_log_scale(self):
        text = render_bars({"a": 50.0, "b": 1.2}, log=True)
        assert "50.000x" in text

    def test_render_empty(self):
        assert render_bars({}) == "(no data)"

    def test_render_figure_and_table_text(self, runner, suite_results):
        fig_text = render_figure(figure4(runner))
        assert "fig4" in fig_text
        tbl_text = render_table_data(table1_demo())
        assert "table1" in tbl_text
