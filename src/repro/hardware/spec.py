"""Hardware parameter records and the paper's machine preset.

Section VI of the paper: "The SKU of the MIC we used is ES2-P/A/X 1750.
It has 61 cores at 1.05 GHz, 4 threads per each core, a total of 32 MB L2
cache and 8 GB GDDR5 memory.  The CPU we used is Intel Xeon E5-2660, with
8 cores and 2.2 GHz clock frequency."  Benchmarks use 4 CPU threads
(5 for dedup, 6 for ferret) and 200 MIC threads.

The derived throughput numbers below are calibrated so the *relative*
behaviour matches the paper: a single MIC thread is much slower than a CPU
thread; 200 MIC threads with vectorization beat 4 CPU threads on regular
compute-bound loops; PCIe transfer time is comparable to computation for
the Figure 4 benchmarks; and kernel launch overhead makes fine-grained
offloads catastrophically slow (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

GB = float(1 << 30)
MB = float(1 << 20)
KB = float(1 << 10)


@dataclass(frozen=True)
class CpuSpec:
    """Host multicore processor model."""

    name: str = "Xeon E5-2660"
    cores: int = 8
    threads_used: int = 4
    clock_ghz: float = 2.2
    #: Sustained scalar floating-point ops per cycle per thread (superscalar
    #: issue, out-of-order — far better than one MIC Pentium-class core).
    flops_per_cycle: float = 4.0
    #: SIMD width in 32-bit lanes (AVX: 256-bit).
    simd_lanes: int = 8
    #: Fraction of peak SIMD speedup typically realized by icc -O2 on CPU.
    simd_efficiency: float = 0.35
    mem_bandwidth: float = 40.0 * GB
    cache_bytes: int = 20 * int(MB)
    #: Out-of-order cores overlap cache misses with computation.
    in_order: bool = False

    @property
    def thread_flops(self) -> float:
        """Scalar flops/second of one thread."""
        return self.clock_ghz * 1e9 * self.flops_per_cycle


@dataclass(frozen=True)
class MicSpec:
    """Xeon Phi coprocessor model."""

    name: str = "Xeon Phi ES2-P/A/X 1750"
    cores: int = 61
    threads_per_core: int = 4
    threads_used: int = 200
    clock_ghz: float = 1.05
    #: In-order Pentium-class core: about one scalar flop per cycle, and a
    #: thread only issues every other cycle when fewer than 2 threads/core.
    flops_per_cycle: float = 0.5
    #: 512-bit SIMD: 16 32-bit lanes.
    simd_lanes: int = 16
    #: Fraction of peak SIMD speedup realized on vectorizable loops.  KNC
    #: sustained well under half of peak on real kernels (masking,
    #: transcendentals via SVML, alignment): calibrated so a vectorized
    #: compute-bound kernel on 200 MIC threads beats 4 CPU threads by ~4x,
    #: the ratio the paper's post-optimization speedups imply.
    simd_efficiency: float = 0.25
    mem_bandwidth: float = 150.0 * GB
    cache_bytes: int = 32 * int(MB)
    #: Pentium-class in-order cores stall on misses unless the loop is
    #: vectorized (wide loads + software prefetch overlap the latency).
    in_order: bool = True
    memory_capacity: int = 8 * int(GB)
    #: Memory the device OS reserves (the paper: "part of it is reserved
    #: for OS").
    os_reserved: int = int(0.5 * GB)
    #: Overhead of launching one offload kernel, seconds.  Dominated by
    #: LEO/COI invocation latency; the paper's K in the block-size model.
    kernel_launch_overhead: float = 1.0e-3
    #: Overhead of signalling a persistent kernel (thread reuse) instead of
    #: launching a fresh one — the COI fast path.
    signal_overhead: float = 2.0e-5
    #: Parallel efficiency exponent: utilization of t threads scales as
    #: (t / threads_used) ** scaling_alpha below saturation.
    scaling_alpha: float = 1.0

    @property
    def thread_flops(self) -> float:
        """Scalar flops/second of one hardware thread."""
        return self.clock_ghz * 1e9 * self.flops_per_cycle

    @property
    def usable_memory(self) -> int:
        """Device capacity minus the OS reservation."""
        return self.memory_capacity - self.os_reserved


@dataclass(frozen=True)
class PcieSpec:
    """PCIe link between host and coprocessor."""

    #: Sustained DMA bandwidth for large transfers.
    bandwidth: float = 6.0 * GB
    #: Fixed per-transfer latency (DMA setup + doorbell + completion).
    latency: float = 15.0e-6
    #: Page size used by the MYO shared-memory runtime.
    page_bytes: int = 4096
    #: Software page-fault handling cost per MYO page (trap, lookup,
    #: message to host, map) — the reason MYO is "very slow" (Section V).
    page_fault_overhead: float = 30.0e-6
    #: MYO transfers at page granularity never reach DMA streaming
    #: bandwidth; effective fraction of the link they achieve.
    paged_bandwidth_fraction: float = 0.12


@dataclass(frozen=True)
class MachineSpec:
    """The full evaluation machine: host + coprocessor + link.

    *devices* is the number of identical coprocessor cards installed —
    the paper machine carries one, but multi-MIC nodes were a standard
    configuration (each card with its own GDDR5 and its own PCIe DMA
    engine, which is why a fleet run gets per-device memory managers and
    DMA channels rather than shares).
    """

    cpu: CpuSpec = field(default_factory=CpuSpec)
    mic: MicSpec = field(default_factory=MicSpec)
    pcie: PcieSpec = field(default_factory=PcieSpec)
    devices: int = 1


def paper_machine() -> MachineSpec:
    """The Section VI machine with default calibration."""
    return MachineSpec()


def tilegx_machine() -> MachineSpec:
    """A Tilera Tile-Gx-like coprocessor target.

    The paper closes by arguing its techniques "can also be applied to
    other emerging manycore processors, such as the Tilera Tile-Gx
    processors."  This preset models a TILE-Gx8072-style part on the same
    host: 72 simple in-order cores at 1.2 GHz, no wide SIMD (Tile-Gx has
    only narrow multimedia ops), DDR3 instead of GDDR5, and a PCIe Gen2
    link.  The same transformed programs run against it unchanged — the
    optimizations are target-agnostic because they attack transfer
    overlap, launch overhead and transfer granularity, not ISA details.
    """
    tile = MicSpec(
        name="Tilera Tile-Gx8072 (modeled)",
        cores=72,
        threads_per_core=1,
        threads_used=72,
        clock_ghz=1.2,
        flops_per_cycle=1.0,
        simd_lanes=2,
        simd_efficiency=0.4,
        mem_bandwidth=50.0 * GB,
        cache_bytes=18 * int(MB),
        in_order=True,
        memory_capacity=16 * int(GB),
        os_reserved=int(1 * GB),
        kernel_launch_overhead=0.6e-3,
        signal_overhead=1.5e-5,
    )
    pcie = PcieSpec(bandwidth=3.2 * GB, latency=18.0e-6)
    return MachineSpec(mic=tile, pcie=pcie)
