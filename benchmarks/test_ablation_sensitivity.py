"""Ablation: sensitivity of the gains to machine parameters.

Beyond the paper's single testbed: how the optimizations' value moves
with PCIe bandwidth (streaming), kernel-launch overhead (merging), and
input size.
"""

from benchmarks.conftest import emit
from repro.experiments.sweeps import (
    render_sweep,
    sweep_launch_overhead,
    sweep_pcie_bandwidth,
    sweep_problem_scale,
)


def test_streaming_gain_vs_pcie_bandwidth(benchmark):
    def sweep():
        return sweep_pcie_bandwidth("blackscholes", [2.0, 6.0, 16.0, 64.0])

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_sweep(result))
    gains = result.gains()
    # A slower link makes streaming more valuable; a near-infinite link
    # leaves nothing to hide.
    assert gains[2.0] > gains[64.0]
    assert gains[6.0] > 1.15  # the paper's machine


def test_merging_gain_vs_launch_overhead(benchmark):
    def sweep():
        return sweep_launch_overhead("cfd", [0.01, 0.1, 1.0, 5.0])

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_sweep(result))
    gains = result.gains()
    ordered = [gains[k] for k in (0.01, 0.1, 1.0, 5.0)]
    assert ordered == sorted(ordered)  # monotone in K
    assert gains[1.0] > 5  # the paper-era stack
    assert gains[0.01] > 1  # transfers still merge even with free launches


def test_gain_vs_problem_scale(benchmark):
    def sweep():
        return sweep_problem_scale("blackscholes", [0.01, 0.1, 1.0, 4.0])

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_sweep(result))
    gains = result.gains()
    # At 1% of the paper's input, launch overheads eat the streaming win;
    # at full scale the gain is the Figure 12 value.
    assert gains[1.0] > gains[0.01]
