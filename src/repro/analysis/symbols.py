"""Symbol tables and type sizes for MiniC programs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SymbolError
from repro.minic import ast_nodes as ast
from repro.minic.visitor import walk

#: Byte sizes of the scalar types, matching a typical LP64 C ABI on MIC.
SCALAR_SIZES = {"int": 4, "float": 4, "double": 8, "char": 1, "void": 0}

#: Size of a (plain, untranslated) pointer.
POINTER_SIZE = 8


@dataclass
class Scope:
    """One lexical scope mapping names to declared types."""

    parent: Optional["Scope"] = None
    symbols: Dict[str, ast.Type] = field(default_factory=dict)

    def declare(self, name: str, typ: ast.Type) -> None:
        """Bind *name* to *typ*; redeclaration raises SymbolError."""
        if name in self.symbols:
            raise SymbolError(f"redeclaration of {name!r}")
        self.symbols[name] = typ

    def lookup(self, name: str) -> Optional[ast.Type]:
        """Resolve *name* through the scope chain; None if unbound."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


@dataclass
class SymbolTable:
    """Program-wide symbol information.

    ``globals_`` holds file-scope declarations; ``functions`` maps each
    function to a scope containing its parameters and every local declared
    anywhere in its body (MiniC transforms do not need precise block
    scoping — names are unique enough in the benchmark programs, and the
    streaming transform generates fresh names).
    """

    structs: Dict[str, ast.StructDef] = field(default_factory=dict)
    globals_: Scope = field(default_factory=Scope)
    functions: Dict[str, Scope] = field(default_factory=dict)

    def type_of(self, func: str, name: str) -> Optional[ast.Type]:
        """The declared type of *name* as seen from *func*."""
        scope = self.functions.get(func)
        if scope is not None:
            found = scope.lookup(name)
            if found is not None:
                return found
        return self.globals_.lookup(name)

    def element_size(self, func: str, name: str) -> int:
        """Byte size of one element of array/pointer *name* (4 if unknown).

        Unknown names default to ``float`` size, which matches the
        benchmarks' dominant element type and keeps footprint estimation
        usable on partially-typed fragments.
        """
        typ = self.type_of(func, name)
        if isinstance(typ, (ast.PointerType, ast.ArrayType)):
            return sizeof_type(typ.base, self.structs)
        if typ is not None:
            return sizeof_type(typ, self.structs)
        return SCALAR_SIZES["float"]


def sizeof_type(typ: ast.Type, structs: Optional[Dict[str, ast.StructDef]] = None) -> int:
    """Compute the byte size of *typ* (structs are packed, no padding)."""
    if isinstance(typ, ast.BaseType):
        return SCALAR_SIZES[typ.name]
    if isinstance(typ, ast.PointerType):
        return POINTER_SIZE
    if isinstance(typ, ast.StructType):
        if structs is None or typ.name not in structs:
            raise SymbolError(f"unknown struct {typ.name!r}")
        return sum(sizeof_type(f.type, structs) for f in structs[typ.name].fields_)
    if isinstance(typ, ast.ArrayType):
        if not isinstance(typ.size, ast.IntLit):
            raise SymbolError("cannot size array without a constant length")
        return typ.size.value * sizeof_type(typ.base, structs)
    raise SymbolError(f"cannot size type {typ!r}")


def build_symbol_table(program: ast.Program) -> SymbolTable:
    """Collect structs, globals, parameters and locals of *program*."""
    table = SymbolTable()
    for struct in program.structs():
        table.structs[struct.name] = struct
    for decl in program.decls:
        if isinstance(decl, ast.GlobalDecl):
            table.globals_.declare(decl.decl.name, decl.decl.type)
    for func in program.functions():
        scope = Scope(parent=table.globals_)
        for param in func.params:
            scope.declare(param.name, param.type)
        if func.body is not None:
            for node in walk(func.body):
                if isinstance(node, ast.VarDecl) and node.name not in scope.symbols:
                    scope.declare(node.name, node.type)
        table.functions[func.name] = scope
    return table
