"""Persistent worker pool: warm simulator processes behind asyncio.

The pool wraps the same executor class the ``--jobs`` campaign fan-out
uses (:data:`repro.faults.campaign._POOL_CLS`, a
``ProcessPoolExecutor`` unless a test substitutes a double), so service
workers inherit every property that machinery already guarantees:
module-level picklable job functions, per-process memoized baselines and
warm :class:`~repro.experiments.harness.SuiteRunner` instances, and
results that are pure functions of the spec — worker count and
scheduling never show up in a payload.

``workers=0`` selects *inline* mode: jobs execute synchronously on the
event-loop thread.  That is the zero-dependency path tests and the
deterministic trace replay default to; ``repro serve`` uses real
processes.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.service import jobs as _jobs


class WorkerPool:
    """Executes job spec dicts on a persistent pool of warm workers."""

    def __init__(self, workers: int = 0, pool_cls=None) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._pool = None
        if workers > 0:
            if pool_cls is None:
                # Late import keeps the service importable without the
                # campaign layer and honours test monkeypatching.
                from repro.faults import campaign

                pool_cls = campaign._POOL_CLS
            self._pool = pool_cls(max_workers=workers)

    @property
    def inline(self) -> bool:
        """True when jobs run on the event-loop thread (workers=0)."""
        return self._pool is None

    async def run(self, spec_payload: dict) -> dict:
        """Execute one job spec dict, returning its result dict."""
        if self._pool is None:
            return _jobs.execute_job(spec_payload)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, _jobs.execute_job, spec_payload
        )

    async def warm_stats(self) -> Optional[dict]:
        """One worker's warm-cache diagnostics (inline state if no pool)."""
        if self._pool is None:
            return _jobs.warm_stats()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, _jobs.warm_stats)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool workers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
